package comm

// Restart-from-checkpoint recovery. The topology does not know what a
// checkpoint contains — that is the ckpt package's business — it owns the
// communication half of the problem: which halo messages a restarted rank
// already received (they must be replayed into its link queues) and which
// it already sent (the re-issued copies must be swallowed so peers never
// see duplicates).
//
// The mechanism rests on per-link message counts, not tags: collective
// tags repeat across waves, counts never do. While recovery is armed,
// enqueue retains a copy of every message per link (retainLog). A rank's
// checkpoint records, per peer link, the inbound consumed count and the
// outbound sender-side logical send count at the snapshot instant — its
// "cursors". On restart:
//
//   - replayInbound re-prepends retained inbound messages from the cursor
//     up to whatever the crashed body had consumed, restoring the link
//     queue exactly as it stood at the snapshot;
//   - armSuppression counts, per outbound link, the sends the pre-crash
//     body issued beyond the cursor — the restarted body will re-issue
//     them and Endpoint.Send swallows exactly that many.
//
// Retained messages below every consumer's cursor are released via
// TrimRetained after each successful snapshot, bounding retention to one
// checkpoint interval per link.

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Recovery configures restart-from-checkpoint for Run. Cursors is the
// bridge to the checkpoint store: given a failed rank it returns the
// per-peer inbound (consumed) and outbound (sent) link cursors recorded in
// that rank's latest snapshot, or ok=false when no snapshot exists (the
// failure is then not recoverable).
type Recovery struct {
	// MaxRestarts bounds the total restarts across all ranks of one Run
	// (default defaultMaxRestarts).
	MaxRestarts int
	// Recoverable reports whether a given rank failure may be recovered;
	// nil means every failure is eligible. Crash-fault injection installs a
	// predicate matching only the injected CrashError here.
	Recoverable func(rank int, err error) bool
	// Cursors returns the failed rank's snapshot link cursors: recv[p] is
	// the consumed count on the p→rank link, send[p] the logical send
	// count on the rank→p link. ok=false means no snapshot exists.
	Cursors func(rank int) (recv, send []int64, ok bool)
	// OnRestart, when non-nil, observes every successful re-arm just before
	// the body re-runs: the rank, the restart attempt (1-based, across the
	// whole Run), and how many inbound messages were replayed.
	OnRestart func(rank, attempt, replayed int)

	restarts atomic.Int64
}

// retainLog is one link's send retention: msgs[i] is the message whose
// 1-based enqueue ordinal is base+i+1. Guarded by the link's mu.
type retainLog struct {
	base int64
	msgs []Message
}

// SetRecovery arms restart-from-checkpoint recovery. Must be called before
// Run; passing nil disarms it and drops the retention logs. While armed,
// every enqueue retains a payload copy until TrimRetained releases it.
func (t *Topology) SetRecovery(rec *Recovery) error {
	if rec == nil {
		t.rec = nil
		t.retain = nil
		t.suppress = nil
		t.sent = nil
		return nil
	}
	if rec.Cursors == nil {
		return errors.New("comm: Recovery needs a Cursors callback (the checkpoint store bridge)")
	}
	if rec.MaxRestarts == 0 {
		rec.MaxRestarts = defaultMaxRestarts
	}
	t.rec = rec
	t.retain = make([]retainLog, t.p*t.p)
	t.sent = make([]atomic.Int64, t.p*t.p)
	for i, l := range t.links {
		l.mu.Lock()
		t.retain[i].base = l.messages
		t.sent[i].Store(l.messages)
		l.mu.Unlock()
	}
	t.suppress = make([]atomic.Int64, t.p*t.p)
	return nil
}

// retainLocked appends a copy of m to link idx's retention log. Called from
// enqueue with the link's mu held. With a pool attached the copy is a
// leased buffer from the sender's shard (the queued original is owned by
// the receiver and will be released by it — the two must never alias).
func (t *Topology) retainLocked(idx, from int, m Message) {
	cp := m
	if t.pool != nil {
		cp.Data = t.pool.Get(from, len(m.Data))
	} else {
		cp.Data = make([]float64, len(m.Data))
	}
	copy(cp.Data, m.Data)
	t.retain[idx].msgs = append(t.retain[idx].msgs, cp)
}

// TrimRetained releases rank's inbound retention below the given per-peer
// consumed cursors — called after rank persists a snapshot, since no
// restart will ever need messages the snapshot already covers.
func (t *Topology) TrimRetained(rank int, recv []int64) {
	if t.retain == nil {
		return
	}
	for from := 0; from < t.p; from++ {
		if from == rank {
			continue
		}
		idx := t.linkIndex(from, rank)
		l := t.links[idx]
		l.mu.Lock()
		rl := &t.retain[idx]
		if drop := recv[from] - rl.base; drop > 0 {
			if drop > int64(len(rl.msgs)) {
				drop = int64(len(rl.msgs))
			}
			if t.pool != nil {
				for _, m := range rl.msgs[:drop] {
					t.pool.Put(from, m.Data)
				}
			}
			rest := copy(rl.msgs, rl.msgs[drop:])
			for i := rest; i < len(rl.msgs); i++ {
				rl.msgs[i] = Message{} // release the backing arrays
			}
			rl.msgs = rl.msgs[:rest]
			rl.base += drop
		}
		l.mu.Unlock()
	}
}

// tryRestart decides whether rank's failure is recoverable and, when it
// is, rewinds the communication state to the rank's last snapshot. It runs
// on the failed rank's goroutine between body invocations.
func (t *Topology) tryRestart(rank int, attempt int, err error) bool {
	rec := t.rec
	if rec == nil || errors.Is(err, ErrCanceled) || t.canceled.Load() {
		return false
	}
	if rec.Recoverable != nil && !rec.Recoverable(rank, err) {
		return false
	}
	if rec.restarts.Add(1) > int64(rec.MaxRestarts) {
		return false
	}
	recv, send, ok := rec.Cursors(rank)
	if !ok {
		return false
	}
	t.armSuppression(rank, send)
	replayed := t.replayInbound(rank, recv)
	if rec.OnRestart != nil {
		rec.OnRestart(rank, attempt, replayed)
	}
	return true
}

// armSuppression counts, per outbound link, how many sends the pre-crash
// body issued beyond the snapshot cursor; Endpoint.Send swallows that many
// re-issued sends after the restart.
func (t *Topology) armSuppression(rank int, send []int64) {
	for to := 0; to < t.p; to++ {
		if to == rank {
			continue
		}
		idx := t.linkIndex(rank, to)
		// The sender-side logical count, not the link's enqueue count: the
		// crashed rank is the only incrementer of its own outbound counters
		// and it is not sending anymore, so the read is exact even while a
		// socket transport still has its last frames in flight.
		ahead := t.sent[idx].Load() - send[to]
		if ahead < 0 {
			panic(fmt.Sprintf("comm: rank %d snapshot send cursor %d ahead of link %d→%d count %d",
				rank, send[to], rank, to, send[to]-ahead))
		}
		t.suppress[idx].Store(ahead)
	}
}

// replayInbound re-prepends, on every inbound link, the retained messages
// the crashed body consumed beyond the snapshot cursor, and rewinds the
// link's consumed count to the cursor. The restarted body then re-receives
// exactly the sequence it saw the first time, ahead of anything peers have
// queued since. Returns the number of messages replayed.
func (t *Topology) replayInbound(rank int, recv []int64) int {
	replayed := 0
	for from := 0; from < t.p; from++ {
		if from == rank {
			continue
		}
		idx := t.linkIndex(from, rank)
		l := t.links[idx]
		l.mu.Lock()
		rl := &t.retain[idx]
		lo := recv[from] - rl.base
		hi := l.consumed - rl.base
		if lo < 0 || hi > int64(len(rl.msgs)) {
			l.mu.Unlock()
			panic(fmt.Sprintf("comm: link %d→%d retention [%d,%d) cannot cover replay [%d,%d)",
				from, rank, rl.base, rl.base+int64(len(rl.msgs)), recv[from], l.consumed))
		}
		if n := int(hi - lo); n > 0 {
			head := make([]Message, 0, n+len(l.queue))
			for _, m := range rl.msgs[lo:hi] {
				cp := m
				if t.pool != nil {
					cp.Data = t.pool.Get(from, len(m.Data))
				} else {
					cp.Data = make([]float64, len(m.Data))
				}
				copy(cp.Data, m.Data)
				head = append(head, cp)
			}
			l.queue = append(head, l.queue...)
			l.consumed = recv[from]
			replayed += n
		}
		l.mu.Unlock()
		if t.capacity > 0 {
			l.cond.Broadcast()
		}
	}
	return replayed
}

// TrimRetained releases this rank's inbound retention below the given
// per-peer consumed cursors — the Endpoint view of Topology.TrimRetained,
// called after the rank persists a snapshot.
func (e *Endpoint) TrimRetained(recv []int64) { e.topo.TrimRetained(e.rank, recv) }

// RecoveryQuiescent reports whether this rank's post-restart send
// suppression has fully drained. Checkpointing code must not cut a new
// snapshot while suppression is armed: the outbound link counts then
// overstate what the restarted incarnation has logically sent, and a
// snapshot taken in that window would mis-arm a second restart. Always
// true when recovery is disabled.
func (e *Endpoint) RecoveryQuiescent() bool {
	t := e.topo
	if t.suppress == nil {
		return true
	}
	for to := 0; to < t.p; to++ {
		if to != e.rank && t.suppress[t.linkIndex(e.rank, to)].Load() > 0 {
			return false
		}
	}
	return true
}

// Cursors fills the caller's per-peer link cursors at this instant:
// recv[p] is the consumed count on the p→rank inbound link, send[p] the
// enqueued count on the rank→p outbound link. Both slices must have length
// P. Called by checkpointing code on the rank's own goroutine at a wave
// boundary — a point where no message to or from this rank is in flight,
// so the two counts are mutually consistent.
func (e *Endpoint) Cursors(recv, send []int64) {
	t := e.topo
	for p := 0; p < t.p; p++ {
		if p == e.rank {
			recv[p], send[p] = 0, 0
			continue
		}
		in := t.link(p, e.rank)
		in.mu.Lock()
		recv[p] = in.consumed
		in.mu.Unlock()
		// The sender-side logical count (exact: this rank is its only
		// incrementer), not the link's enqueue count, which lags while a
		// socket transport still has frames in flight.
		send[p] = t.sent[t.linkIndex(e.rank, p)].Load()
	}
}
