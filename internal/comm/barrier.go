package comm

import "sync"

// SyncBarrier is a reusable n-participant barrier for the runtime's own
// phase synchronization (scatter→compute→gather). Unlike Endpoint.Barrier
// it moves no messages and therefore does not appear in communication
// statistics: it models the boundary between the program's serial and
// parallel sections, not data movement the paper's model charges for.
type SyncBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     int
}

// NewSyncBarrier creates a barrier for n participants.
func NewSyncBarrier(n int) *SyncBarrier {
	b := &SyncBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n participants have called Wait, then releases
// them together. The barrier is reusable.
func (b *SyncBarrier) Wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
}
