package comm

// Cooperative cancellation and deadlock diagnosis. A topology can be
// poisoned once — by a failing rank, by an external Cancel, or by the
// watchdog below — after which every blocked receiver and bounded sender
// wakes with a CancelError and every later operation fails fast.
//
// The watchdog is event-driven, not polling: the topology counts the live
// ranks of the current Run and the ranks blocked inside a send, receive, or
// injected stall. Whenever the two counts meet, a checker goroutine
// re-verifies under the link locks that every registered wait is still
// unsatisfiable (no message arrived, no queue drained) and that no wait
// transition raced the snapshot; only then does it declare a deadlock,
// snapshot the wait-for graph, and cancel the topology with a structured
// DeadlockError instead of letting the run hang.

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"wavefront/internal/fault"
)

// ErrCanceled matches (via errors.Is) every error produced by a poisoned
// topology.
var ErrCanceled = errors.New("comm: canceled")

// ErrDeadlock matches (via errors.Is) the watchdog's DeadlockError.
var ErrDeadlock = errors.New("comm: deadlock")

// CancelError is what blocked and subsequent operations return after the
// topology is poisoned; Cause is the first cancellation's reason.
type CancelError struct {
	Cause error
}

func (e *CancelError) Error() string { return fmt.Sprintf("comm: canceled: %v", e.Cause) }

// Unwrap exposes the cancellation cause to errors.Is/As.
func (e *CancelError) Unwrap() error { return e.Cause }

// Is reports ErrCanceled.
func (e *CancelError) Is(target error) bool { return target == ErrCanceled }

// WaitEntry is one node of the wait-for graph: a rank and the operation it
// is blocked in.
type WaitEntry struct {
	// Rank is the blocked rank.
	Rank int
	// Op is "recv", "send", or "stall(send)"/"stall(recv)" for a
	// fault-injected stall.
	Op string
	// Peer is the rank waited on: the source for a receive, the
	// destination for a bounded send.
	Peer int
	// Tag is the tag of the expected or outgoing message.
	Tag int
	// QueueLen is the waited link's queue depth at diagnosis time (0 for a
	// starved receiver, the capacity for a saturated sender).
	QueueLen int
}

func (w WaitEntry) String() string {
	switch w.Op {
	case "recv":
		return fmt.Sprintf("rank %d blocked in recv from rank %d (tag %d, queue empty)", w.Rank, w.Peer, w.Tag)
	case "send":
		return fmt.Sprintf("rank %d blocked in send to rank %d (tag %d, queue full at depth %d)", w.Rank, w.Peer, w.Tag, w.QueueLen)
	default:
		return fmt.Sprintf("rank %d stalled by injected fault in %s, peer %d (tag %d)", w.Rank, w.Op, w.Peer, w.Tag)
	}
}

// DeadlockError is the watchdog's structured diagnosis: every live rank was
// blocked, and Waits records who waited on whom, at which tag.
type DeadlockError struct {
	Waits []WaitEntry
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "comm: deadlock: all %d live ranks are blocked; wait-for graph:", len(e.Waits))
	for _, w := range e.Waits {
		fmt.Fprintf(&b, "\n  %s", w)
	}
	return b.String()
}

// Is reports ErrDeadlock.
func (e *DeadlockError) Is(target error) bool { return target == ErrDeadlock }

// waitOp classifies what a registered waiter is blocked in.
type waitOp uint8

const (
	waitRecv waitOp = iota
	waitSend
	waitStallSend
	waitStallRecv
)

func (o waitOp) String() string {
	switch o {
	case waitRecv:
		return "recv"
	case waitSend:
		return "send"
	case waitStallSend:
		return "stall(send)"
	default:
		return "stall(recv)"
	}
}

// waitInfo is one rank's registered wait.
type waitInfo struct {
	active   bool
	op       waitOp
	peer     int
	tag      int
	link     int // index into Topology.links; -1 for stalls
	queueLen int // queue depth observed when the wait began
}

// Cancel poisons the topology with the given cause: every blocked receiver
// and bounded sender wakes with a CancelError, and every subsequent Send or
// Recv fails fast. Cancel is idempotent — the first cause wins — and safe
// to call from any goroutine, including outside Run. A nil cause records a
// generic cancellation.
func (t *Topology) Cancel(cause error) { t.cancel(-1, cause) }

// Err returns the cancellation cause, or nil while the topology is healthy.
func (t *Topology) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cause
}

func (t *Topology) cancel(rank int, cause error) {
	if cause == nil {
		cause = errors.New("canceled by caller")
	}
	t.mu.Lock()
	if t.canceled.Load() {
		// First cause wins — with one exception. The watchdog fires on the
		// all-blocked state an explicit cancellation itself creates, so a
		// concurrent DeadlockError can land first and masquerade as the
		// outcome when cancellation (or a real rank failure) was the true
		// cause. A real cause therefore overwrites a recorded deadlock
		// diagnosis; a deadlock diagnosis never overwrites anything.
		var have, incoming *DeadlockError
		if errors.As(t.cause, &have) && !errors.As(cause, &incoming) {
			t.cause, t.causeRank = cause, rank
		}
		t.mu.Unlock()
		return
	}
	t.cause, t.causeRank = cause, rank
	t.canceled.Store(true)
	close(t.done)
	t.mu.Unlock()
	// Wake every waiter. Taking each link lock orders the broadcast after
	// any in-flight condition check, so no waiter can miss it.
	for _, l := range t.links {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	}
	// Socket transports additionally sever their connections so reads and
	// writes blocked in the kernel unwind too.
	t.tp.Cancel()
}

// cancelError builds the error a poisoned operation returns.
func (t *Topology) cancelError() error {
	t.mu.Lock()
	cause, rank := t.cause, t.causeRank
	t.mu.Unlock()
	if rank >= 0 {
		cause = fmt.Errorf("rank %d: %w", rank, cause)
	}
	return &CancelError{Cause: cause}
}

// beginWait registers rank as blocked. When every live rank of the current
// Run is now blocked, it pokes the deadlock watchdog. Callers may hold
// the waited link's lock (the lock order is link.mu before Topology.mu;
// cancel and checkDeadlock never hold mu while taking a link lock).
func (t *Topology) beginWait(rank int, w waitInfo) {
	w.active = true
	t.mu.Lock()
	t.waits[rank] = w
	t.blocked++
	t.waitGen++
	if t.live > 0 && t.blocked == t.live && !t.canceled.Load() && t.wake != nil {
		// Non-blocking: a pending poke already guarantees a fresh check.
		select {
		case t.wake <- struct{}{}:
		default:
		}
	}
	t.mu.Unlock()
}

// endWait deregisters rank after it wakes.
func (t *Topology) endWait(rank int) {
	t.mu.Lock()
	t.waits[rank].active = false
	t.blocked--
	t.waitGen++
	t.mu.Unlock()
}

// rankDone retires a Run participant; the remaining live ranks may now all
// be blocked, so the deadlock condition is re-evaluated.
func (t *Topology) rankDone(rank int) {
	t.mu.Lock()
	t.live--
	t.waitGen++
	if t.live > 0 && t.blocked == t.live && !t.canceled.Load() && t.wake != nil {
		select {
		case t.wake <- struct{}{}:
		default:
		}
	}
	t.mu.Unlock()
}

// watchdog is the Run-scoped deadlock checker: one persistent goroutine
// woken through the buffered wake channel whenever the last live rank
// blocks. A single goroutine with preallocated scratch keeps the
// all-blocked notification — a routine event whenever a sender's wake-up
// broadcast races a fresh wait — free of per-event allocations; a poke
// arriving mid-check coalesces into the buffered slot and triggers one
// more check, so no suspicion is ever dropped.
func (t *Topology) watchdog(wake <-chan struct{}) {
	suspects := make([]suspect, 0, t.p)
	entries := make([]WaitEntry, 0, t.p)
	for range wake {
		t.checkDeadlock(suspects, entries)
	}
}

// suspect is one registered wait under deadlock suspicion.
type suspect struct {
	rank int
	w    waitInfo
}

// checkDeadlock verifies a suspected deadlock and, if confirmed, cancels
// the topology with the wait-for diagnosis. The suspicion is confirmed only
// if (a) every registered wait is still unsatisfiable under its link lock
// and (b) no wait transition happened concurrently (the generation counter
// is unchanged) — every blocked rank is in cond.Wait, so the state it
// verified cannot move afterwards. The scratch slices are the watchdog's;
// confirmed diagnoses are cloned out of them.
func (t *Topology) checkDeadlock(suspects []suspect, entries []WaitEntry) {
	t.mu.Lock()
	if t.canceled.Load() || t.live == 0 || t.blocked != t.live {
		t.mu.Unlock()
		return
	}
	gen := t.waitGen
	suspects = suspects[:0]
	for r := range t.waits {
		if t.waits[r].active {
			suspects = append(suspects, suspect{r, t.waits[r]})
		}
	}
	t.mu.Unlock()

	// Over a socket transport a frame can be in flight — written by the
	// sender but not yet demuxed into its link queue — so an all-blocked
	// state with empty queues is not yet a deadlock. Delivery is imminent;
	// re-arm the check instead of confirming.
	if f, ok := t.tp.(interface{ InFlight() int64 }); ok && f.InFlight() > 0 {
		time.AfterFunc(time.Millisecond, t.pokeWatchdog)
		return
	}

	entries = entries[:0]
	for _, s := range suspects {
		qlen := s.w.queueLen
		if s.w.link >= 0 {
			l := t.links[s.w.link]
			l.mu.Lock()
			qlen = len(l.queue)
			satisfiable := false
			switch s.w.op {
			case waitRecv:
				satisfiable = qlen > 0
			case waitSend:
				satisfiable = qlen < t.capacity
			}
			l.mu.Unlock()
			if satisfiable {
				return // someone can make progress: not a deadlock
			}
		}
		entries = append(entries, WaitEntry{
			Rank: s.rank, Op: s.w.op.String(), Peer: s.w.peer, Tag: s.w.tag, QueueLen: qlen,
		})
	}

	t.mu.Lock()
	stable := gen == t.waitGen && !t.canceled.Load()
	t.mu.Unlock()
	if !stable {
		return // a rank progressed while we looked; any new all-blocked state re-triggers
	}
	t.cancel(-1, &DeadlockError{Waits: append([]WaitEntry(nil), entries...)})
}

// pokeWatchdog re-triggers the deadlock check if a Run is still active.
func (t *Topology) pokeWatchdog() {
	t.mu.Lock()
	if t.wake != nil && !t.canceled.Load() {
		select {
		case t.wake <- struct{}{}:
		default:
		}
	}
	t.mu.Unlock()
}

// stall implements the injector's ActStall: the rank parks — visible to the
// deadlock detector — until the topology is canceled, then reports the
// cancellation.
func (t *Topology) stall(rank, peer, tag int, op fault.Op) error {
	w := waitInfo{op: waitStallSend, peer: peer, tag: tag, link: -1}
	if op == fault.OpRecv {
		w.op = waitStallRecv
	}
	t.beginWait(rank, w)
	<-t.done
	t.endWait(rank)
	return t.cancelError()
}
