package comm

import (
	"strings"
	"testing"

	"wavefront/internal/bufpool"
	"wavefront/internal/fault"
)

func TestSetBufPoolValidation(t *testing.T) {
	topo, err := NewTopology(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.SetBufPool(bufpool.New(2)); err == nil {
		t.Fatal("a pool sized for 2 ranks must be rejected on a 4-rank topology")
	}
	if err := topo.SetBufPool(bufpool.New(4)); err != nil {
		t.Fatal(err)
	}
	if topo.BufPool() == nil {
		t.Fatal("pool not attached")
	}
	if err := topo.SetBufPool(nil); err != nil || topo.BufPool() != nil {
		t.Fatal("nil must detach the pool")
	}
}

func TestBufPoolFaultsAreMutuallyExclusive(t *testing.T) {
	topo, err := NewTopology(2)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.New(fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Op: fault.OpSend, Rank: fault.Any, Peer: fault.Any, Tag: fault.Any, Action: fault.ActDrop},
	}})
	if err != nil {
		t.Fatal(err)
	}
	topo.SetFaults(inj)
	if err := topo.SetBufPool(bufpool.New(2)); err == nil {
		t.Fatal("SetBufPool must fail while an injector is attached")
	} else if !strings.Contains(err.Error(), "fault injection") {
		t.Fatalf("unhelpful error: %v", err)
	}
	topo.SetFaults(nil)
	if err := topo.SetBufPool(bufpool.New(2)); err != nil {
		t.Fatal(err)
	}
	// Attaching an injector afterwards must drop the pool.
	topo.SetFaults(inj)
	if topo.BufPool() != nil {
		t.Fatal("SetFaults must detach the pool")
	}
}

// TestLeasedPayloadRoundTrip is the steady-state pipeline pattern at the
// comm level: the sender leases, the receiver returns to the sender's
// shard, and the second wave's lease is a pool hit reusing the same
// memory.
func TestLeasedPayloadRoundTrip(t *testing.T) {
	pool := bufpool.NewWithConfig(2, bufpool.Config{Track: true})
	topo, err := NewTopology(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.SetBufPool(pool); err != nil {
		t.Fatal(err)
	}
	// The receiver acks each wave so the return to rank 0's shard is
	// ordered before the next lease — exactly the back-pressure a bounded
	// pipeline provides.
	const waves = 5
	err = topo.Run(func(e *Endpoint) error {
		for w := 0; w < waves; w++ {
			if e.Rank() == 0 {
				buf := e.Lease(100)
				for i := range buf {
					buf[i] = float64(w*1000 + i)
				}
				if err := e.Send(1, w, buf); err != nil {
					return err
				}
				if _, err := e.Recv(1, w); err != nil {
					return err
				}
			} else {
				buf, err := e.Recv(0, w)
				if err != nil {
					return err
				}
				for i, v := range buf {
					if v != float64(w*1000+i) {
						t.Errorf("wave %d element %d = %g", w, i, v)
					}
				}
				e.ReleaseTo(0, buf)
				if err := e.Send(0, w, nil); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.Hits != waves-1 {
		t.Fatalf("got %d pool hits over %d waves, want %d (every wave after the first reuses)",
			st.Hits, waves, waves-1)
	}
	if n := pool.Outstanding(); n != 0 {
		t.Fatalf("%d leases outstanding after the run", n)
	}
}

func TestCollectivesReturnLeases(t *testing.T) {
	pool := bufpool.NewWithConfig(3, bufpool.Config{Track: true})
	topo, err := NewTopology(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.SetBufPool(pool); err != nil {
		t.Fatal(err)
	}
	err = topo.Run(func(e *Endpoint) error {
		for i := 0; i < 4; i++ {
			got, err := e.AllReduce(float64(e.Rank()+1), SumOp)
			if err != nil {
				return err
			}
			if got != 6 {
				t.Errorf("allreduce = %g, want 6", got)
			}
			bc, err := e.Broadcast(got * 2)
			if err != nil {
				return err
			}
			if bc != 12 {
				t.Errorf("broadcast = %g, want 12", bc)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := pool.Outstanding(); n != 0 {
		t.Fatalf("%d collective leases never returned", n)
	}
}
