package comm

// sockTransport moves every message over a loopback socket — TCP or
// unix-domain — while keeping the Topology's link queues as the receive
// side, so receivers, the watchdog, and cancellation behave exactly as they
// do in-process. One connection serves each ordered rank pair (a "link"),
// dialed lazily on the link's first send:
//
//	sender rank r ── frame ──▶ listener ──▶ demux goroutine ──▶ t.enqueue
//
// Wire protocol (little endian). A connection opens with a hello
// identifying its link, and the accept side answers with the link's last
// delivered sequence number so a reconnecting sender knows exactly what was
// lost:
//
//	hello:  magic u32 | from u32 | to u32
//	ack:    delivered i64
//	frame:  seq i64 | tag i64 | elems u32 | payload elems×f64
//
// Every frame carries the link's send sequence number. The demux side
// delivers a frame only when seq == delivered+1 under the link's receive
// lock, so a retransmitted frame after a reconnect is dropped as a
// duplicate and an out-of-order frame from a superseded connection can
// never overtake — exactly-once, in-order delivery survives drops.
//
// Failure handling per frame: a write (or dial) gets cfg.Timeout, then the
// connection is torn down and the attempt repeats under bounded
// exponential backoff (cfg.RetryBase doubling to cfg.RetryMax, at most
// cfg.MaxAttempts). On reconnect the hello-ack tells the sender how far
// delivery got; the most recent frame is retained and retransmitted when
// the ack shows it lost. A gap older than that single retained frame means
// the kernel accepted data that never reached the demux loop — impossible
// on a healthy loopback, reported as an unrecoverable link error.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

type sockTransport struct {
	t   *Topology
	cfg TransportConfig

	network string
	addr    string
	ln      net.Listener
	unixOwn string // unix socket file to remove on Close ("" for tcp)

	links []*sockLink // sender-side state, indexed from*p+to
	rcv   []recvGate  // receiver-side sequence gates, same indexing

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // every open conn, for Cancel/Close
	closed atomic.Bool
	wg     sync.WaitGroup

	dials   atomic.Int64 // connections established (reconnects included)
	retries atomic.Int64 // frame attempts that had to back off

	// sent counts frames handed to the socket layer; delivered counts
	// frames enqueued on a link (dedup-filtered). The difference is the
	// in-flight population the deadlock watchdog must not mistake for
	// starvation (see Topology.checkDeadlock).
	sent      atomic.Int64
	delivered atomic.Int64
}

// InFlight reports frames written but not yet enqueued on a link queue.
func (s *sockTransport) InFlight() int64 { return s.sent.Load() - s.delivered.Load() }

// sockLink is one ordered pair's sender state, touched only by the sending
// rank's goroutine (mu serializes against Cancel/Close tearing the conn).
type sockLink struct {
	mu   sync.Mutex
	conn net.Conn
	seq  int64  // sequence number of the most recent frame
	wbuf []byte // frame encode scratch, reused across sends
	// last is the encoding of the most recently written frame, retained so
	// a reconnect can retransmit it when the hello-ack shows it was lost.
	last []byte
}

// recvGate orders delivery for one link across connection generations.
type recvGate struct {
	mu        sync.Mutex
	delivered int64 // last sequence number enqueued
}

func newSockTransport(t *Topology, cfg TransportConfig) (*sockTransport, error) {
	s := &sockTransport{
		t: t, cfg: cfg,
		links: make([]*sockLink, t.p*t.p),
		rcv:   make([]recvGate, t.p*t.p),
		conns: map[net.Conn]struct{}{},
	}
	for i := range s.links {
		s.links[i] = &sockLink{}
	}
	switch cfg.Kind {
	case TransportTCP:
		s.network = "tcp"
		s.addr = cfg.Addr
		if s.addr == "" {
			s.addr = "127.0.0.1:0"
		}
	case TransportUnix:
		s.network = "unix"
		s.addr = cfg.Addr
		if s.addr == "" {
			f, err := os.CreateTemp("", "wavefront-*.sock")
			if err != nil {
				return nil, fmt.Errorf("comm: transport: %w", err)
			}
			s.addr = f.Name()
			f.Close()
			os.Remove(s.addr)
		}
		s.unixOwn = s.addr
	}
	ln, err := net.Listen(s.network, s.addr)
	if err != nil {
		return nil, fmt.Errorf("comm: transport: listen %s %s: %w", s.network, s.addr, err)
	}
	s.ln = ln
	s.addr = ln.Addr().String()
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the transport's bound listen address.
func (s *sockTransport) Addr() string { return s.addr }

// Recv drains the receiver's link queue — delivery semantics are identical
// to the in-process transport once the demux loop has enqueued the frame.
func (s *sockTransport) Recv(from, to, tag int) (Message, time.Duration, error) {
	return s.t.dequeue(from, to, tag)
}

// Send frames m and writes it on the link's connection under the per-frame
// deadline, retrying with bounded exponential backoff and reconnecting on
// a broken connection. With a buffer pool attached the payload is returned
// to the sender's shard after encoding: ownership transferred at Send, and
// the receive side leases a fresh buffer when the frame arrives.
func (s *sockTransport) Send(from, to int, m Message) (time.Duration, error) {
	lk := s.links[from*s.t.p+to]
	lk.mu.Lock()
	defer lk.mu.Unlock()
	lk.seq++
	frame := appendFrame(lk.wbuf[:0], lk.seq, m)
	lk.wbuf = frame[:0]
	err := s.writeFrame(lk, from, to, frame)
	if err != nil {
		return 0, err
	}
	if p := s.t.pool; p != nil {
		p.Put(from, m.Data)
	}
	return 0, nil
}

func appendFrame(b []byte, seq int64, m Message) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(seq))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(m.Tag)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Data)))
	for _, v := range m.Data {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

func (s *sockTransport) writeFrame(lk *sockLink, from, to int, frame []byte) (err error) {
	// Declared in flight before the first write and rebalanced on failure:
	// between those points the frame may be anywhere between the sender's
	// kernel buffer and the demux loop, and the deadlock watchdog must
	// treat it as deliverable.
	s.sent.Add(1)
	defer func() {
		if err != nil {
			s.sent.Add(-1)
		}
	}()
	backoff := s.cfg.RetryBase
	var lastErr error
	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		if s.t.canceled.Load() {
			return s.t.cancelError()
		}
		if s.closed.Load() {
			return fmt.Errorf("comm: transport closed while sending on link %d→%d", from, to)
		}
		if attempt > 0 {
			s.retries.Add(1)
			time.Sleep(backoff)
			backoff *= 2
			if backoff > s.cfg.RetryMax {
				backoff = s.cfg.RetryMax
			}
		}
		conn, err := s.connLocked(lk, from, to)
		if err != nil {
			lastErr = err
			continue
		}
		conn.SetWriteDeadline(time.Now().Add(s.cfg.Timeout))
		if _, err := conn.Write(frame); err != nil {
			lastErr = err
			s.dropConn(lk) // broken or timed out: redial on the next attempt
			continue
		}
		lk.last = append(lk.last[:0], frame...)
		return nil
	}
	return fmt.Errorf("comm: transport: link %d→%d: frame %d failed after %d attempts: %w",
		from, to, lk.seq, s.cfg.MaxAttempts, lastErr)
}

// connLocked returns the link's connection, dialing and handshaking when
// absent. On a reconnect the hello-ack reveals how far delivery got: the
// retained previous frame is retransmitted when lost, and an older gap is
// unrecoverable.
func (s *sockTransport) connLocked(lk *sockLink, from, to int) (net.Conn, error) {
	if lk.conn != nil {
		return lk.conn, nil
	}
	d := net.Dialer{Timeout: s.cfg.Timeout}
	conn, err := d.Dial(s.network, s.addr)
	if err != nil {
		return nil, err
	}
	if !s.track(conn) {
		conn.Close()
		return nil, fmt.Errorf("comm: transport closed while dialing link %d→%d", from, to)
	}
	s.dials.Add(1)
	conn.SetDeadline(time.Now().Add(s.cfg.Timeout))
	var hello [12]byte
	binary.LittleEndian.PutUint32(hello[0:], transportFrameMagic)
	binary.LittleEndian.PutUint32(hello[4:], uint32(from))
	binary.LittleEndian.PutUint32(hello[8:], uint32(to))
	if _, err := conn.Write(hello[:]); err != nil {
		s.untrack(conn)
		conn.Close()
		return nil, err
	}
	var ack [8]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		s.untrack(conn)
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	delivered := int64(binary.LittleEndian.Uint64(ack[:]))
	// The frame about to be written is lk.seq, so delivery is whole when
	// everything up to lk.seq-1 arrived. One missing frame is retransmitted
	// from the retained copy; more than one cannot happen on a loopback
	// socket that acknowledged the writes, so it is reported, not papered
	// over.
	if pending := lk.seq - 1 - delivered; pending > 0 {
		if pending > 1 || len(lk.last) == 0 {
			s.untrack(conn)
			conn.Close()
			return nil, fmt.Errorf("comm: transport: link %d→%d lost frames %d..%d across a reconnect",
				from, to, delivered+1, lk.seq-1)
		}
		conn.SetWriteDeadline(time.Now().Add(s.cfg.Timeout))
		if _, err := conn.Write(lk.last); err != nil {
			s.untrack(conn)
			conn.Close()
			return nil, err
		}
	}
	lk.conn = conn
	return conn, nil
}

func (s *sockTransport) dropConn(lk *sockLink) {
	if lk.conn != nil {
		s.untrack(lk.conn)
		lk.conn.Close()
		lk.conn = nil
	}
}

// track registers a conn for Cancel/Close teardown; false when the
// transport is already closed.
func (s *sockTransport) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *sockTransport) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *sockTransport) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go s.demux(conn)
	}
}

// demux owns one accepted connection: it validates the hello, acks the
// link's delivered sequence number, then reads frames and enqueues each on
// the Topology's link queue under the receive gate. It exits when the
// connection breaks (sender redial replaces it) or the transport closes.
func (s *sockTransport) demux(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.untrack(conn)
		conn.Close()
	}()
	var hello [12]byte
	conn.SetReadDeadline(time.Now().Add(s.cfg.Timeout))
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	if binary.LittleEndian.Uint32(hello[0:]) != transportFrameMagic {
		return
	}
	from := int(int32(binary.LittleEndian.Uint32(hello[4:])))
	to := int(int32(binary.LittleEndian.Uint32(hello[8:])))
	p := s.t.p
	if from < 0 || from >= p || to < 0 || to >= p || from == to {
		return
	}
	idx := from*p + to
	g := &s.rcv[idx]
	g.mu.Lock()
	var ack [8]byte
	binary.LittleEndian.PutUint64(ack[:], uint64(g.delivered))
	_, err := conn.Write(ack[:])
	g.mu.Unlock()
	if err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	var hdr [20]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		seq := int64(binary.LittleEndian.Uint64(hdr[0:]))
		tag := int(int64(binary.LittleEndian.Uint64(hdr[8:])))
		n := int(binary.LittleEndian.Uint32(hdr[16:]))
		var payload []float64
		if pool := s.t.pool; pool != nil {
			payload = pool.Get(from, n)
		} else {
			payload = make([]float64, n)
		}
		if err := readPayload(conn, payload); err != nil {
			return
		}
		g.mu.Lock()
		if seq != g.delivered+1 {
			// Duplicate retransmission after a reconnect (seq already
			// delivered by the superseded connection) — drop it. A gap
			// forward is impossible: the sender only advances after the
			// hello-ack accounted for everything before.
			g.mu.Unlock()
			if pool := s.t.pool; pool != nil {
				pool.Put(from, payload)
			}
			continue
		}
		g.delivered = seq
		g.mu.Unlock()
		s.t.enqueue(from, to, Message{Tag: tag, Data: payload})
		s.delivered.Add(1)
	}
}

func readPayload(conn net.Conn, dst []float64) error {
	var buf [512]byte
	rem := len(dst) * 8
	i := 0
	var carry [8]byte
	carried := 0
	for rem > 0 {
		n := len(buf)
		if n > rem {
			n = rem
		}
		read, err := conn.Read(buf[:n])
		if err != nil {
			return err
		}
		rem -= read
		b := buf[:read]
		if carried > 0 {
			need := 8 - carried
			if need > len(b) {
				copy(carry[carried:], b)
				carried += len(b)
				continue
			}
			copy(carry[carried:], b[:need])
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(carry[:]))
			i++
			b = b[need:]
			carried = 0
		}
		for len(b) >= 8 {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b))
			i++
			b = b[8:]
		}
		if len(b) > 0 {
			carried = copy(carry[:], b)
		}
	}
	return nil
}

// Cancel tears down every connection so blocked reads and writes unwind;
// senders then observe the topology's poisoned state and fail fast. The
// listener stays up (Close retires it) — cancellation poisons a Run, it
// does not end the transport's life.
func (s *sockTransport) Cancel() {
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// Close shuts the listener, closes every connection, waits for the accept
// and demux goroutines, and removes an owned unix socket file. Idempotent.
func (s *sockTransport) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if s.unixOwn != "" {
		os.Remove(filepath.Clean(s.unixOwn))
	}
	return nil
}

// dropLinkConn forcibly severs the sender-side connection of one link —
// the test hook behind the reconnect-on-drop coverage.
func (s *sockTransport) dropLinkConn(from, to int) {
	lk := s.links[from*s.t.p+to]
	lk.mu.Lock()
	s.dropConn(lk)
	lk.mu.Unlock()
}
