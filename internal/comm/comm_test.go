package comm

import (
	"sync"
	"testing"
)

func TestSendRecvOrder(t *testing.T) {
	topo, err := NewTopology(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		e := topo.Endpoint(1)
		for i := 0; i < 10; i++ {
			d, err := e.Recv(0, i)
			if err != nil {
				t.Error(err)
				return
			}
			if len(d) != 1 || d[0] != float64(i) {
				t.Errorf("message %d payload = %v", i, d)
			}
		}
	}()
	e := topo.Endpoint(0)
	for i := 0; i < 10; i++ {
		if err := e.Send(1, i, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	s := topo.Stats()
	if s.Messages != 10 || s.Elements != 10 {
		t.Errorf("stats = %+v", s)
	}
	if s.Bytes() != 80 {
		t.Errorf("bytes = %d", s.Bytes())
	}
}

func TestTagMismatch(t *testing.T) {
	topo, _ := NewTopology(2)
	if err := topo.Endpoint(0).Send(1, 5, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Endpoint(1).Recv(0, 6); err == nil {
		t.Error("tag mismatch must be reported")
	}
}

func TestSelfAndRangeErrors(t *testing.T) {
	topo, _ := NewTopology(2)
	e := topo.Endpoint(0)
	if err := e.Send(0, 0, nil); err == nil {
		t.Error("self-send must fail")
	}
	if err := e.Send(5, 0, nil); err == nil {
		t.Error("out-of-range send must fail")
	}
	if _, err := e.Recv(0, 0); err == nil {
		t.Error("self-receive must fail")
	}
	if _, err := e.Recv(-1, 0); err == nil {
		t.Error("out-of-range receive must fail")
	}
	if _, err := NewTopology(0); err == nil {
		t.Error("empty topology must fail")
	}
}

func TestRunPropagatesError(t *testing.T) {
	topo, _ := NewTopology(3)
	err := topo.Run(func(e *Endpoint) error {
		if e.Rank() == 1 {
			return errTest
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run must surface rank errors")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "boom" }

func TestPendingMessages(t *testing.T) {
	topo, _ := NewTopology(2)
	topo.Endpoint(0).Send(1, 0, []float64{1})
	if topo.PendingMessages() != 1 {
		t.Error("one message should be pending")
	}
	topo.Endpoint(1).Recv(0, 0)
	if topo.PendingMessages() != 0 {
		t.Error("queue should drain")
	}
}

func TestBarrier(t *testing.T) {
	const p = 5
	topo, _ := NewTopology(p)
	var mu sync.Mutex
	phase := make([]int, p)
	err := topo.Run(func(e *Endpoint) error {
		mu.Lock()
		phase[e.Rank()] = 1
		mu.Unlock()
		if err := e.Barrier(); err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		for r, ph := range phase {
			if ph != 1 {
				t.Errorf("rank %d passed barrier before rank %d entered", e.Rank(), r)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduce(t *testing.T) {
	const p = 4
	topo, _ := NewTopology(p)
	results := make([]float64, p)
	err := topo.Run(func(e *Endpoint) error {
		v, err := e.AllReduce(float64(e.Rank()+1), SumOp)
		if err != nil {
			return err
		}
		results[e.Rank()] = v
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range results {
		if v != 10 { // 1+2+3+4
			t.Errorf("rank %d: sum = %g", r, v)
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	const p = 3
	topo, _ := NewTopology(p)
	err := topo.Run(func(e *Endpoint) error {
		v, err := e.AllReduce(float64(e.Rank()), MaxOp)
		if err != nil {
			return err
		}
		if v != 2 {
			t.Errorf("rank %d: max = %g", e.Rank(), v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcast(t *testing.T) {
	const p = 4
	topo, _ := NewTopology(p)
	err := topo.Run(func(e *Endpoint) error {
		v := -1.0
		if e.Rank() == 0 {
			v = 42
		}
		got, err := e.Broadcast(v)
		if err != nil {
			return err
		}
		if got != 42 {
			t.Errorf("rank %d: broadcast = %g", e.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankCollectives(t *testing.T) {
	topo, _ := NewTopology(1)
	e := topo.Endpoint(0)
	if err := e.Barrier(); err != nil {
		t.Error(err)
	}
	if v, _ := e.AllReduce(3, SumOp); v != 3 {
		t.Error("p=1 allreduce must be identity")
	}
	if v, _ := e.Broadcast(9); v != 9 {
		t.Error("p=1 broadcast must be identity")
	}
}
