// Package comm is the message-passing substrate of the parallel runtime: a
// fully connected topology of ranks exchanging tagged float64 payloads over
// FIFO links, in the style of MPI point-to-point communication.
//
// Links are unbounded by default so that an eagerly pipelining sender never
// blocks (the paper's runtime assumes asynchronous sends); receives block
// until a matching message arrives. SetLinkCapacity bounds every link to
// model finite buffers — senders then block on a full link (backpressure)
// and the time spent blocked is accounted per link. Every link counts
// messages and elements so that experiments can report communication volume
// exactly.
//
// The substrate is fault-aware: SetFaults attaches a deterministic
// fault.Injector consulted on every send and receive behind a nil check
// (mirroring SetTrace), Cancel poisons the whole topology and unblocks
// every waiter, and an event-driven watchdog turns an all-ranks-blocked
// state into a structured DeadlockError instead of a hang (see cancel.go).
package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wavefront/internal/bufpool"
	"wavefront/internal/fault"
	"wavefront/internal/metrics"
	"wavefront/internal/trace"
)

// Message is one point-to-point transfer.
type Message struct {
	// Tag discriminates message streams between the same pair of ranks.
	Tag int
	// Data is the payload; ownership transfers to the receiver.
	Data []float64
}

// link is a FIFO queue between one ordered pair of ranks. Blocking, fault
// injection, and cancellation live on Topology; the link only owns its
// queue, its condition variable, and its accounting.
type link struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []Message
	// consumed counts messages dequeued over the link's lifetime — the
	// receiver-side cursor checkpoint/restart keys replay on (recovery.go).
	consumed int64
	// accounting
	messages     int64
	elements     int64
	blockedSends int64
	blockedNs    int64
}

func newLink() *link {
	l := &link{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Topology is a set of P ranks with a link for every ordered pair.
type Topology struct {
	p     int
	links []*link // links[from*p+to]
	// tr, when non-nil, records every send and receive (with blocked-wait
	// durations) to the per-rank trace. Set before Run; read-only after.
	tr *trace.Recorder
	// inj, when non-nil, is consulted on every send and receive. Set before
	// Run; read-only after.
	inj *fault.Injector
	// cm, when non-nil, is the resolved live-metrics instrument set (see
	// SetMetrics). Set before Run; read-only after.
	cm *commMetrics
	// capacity bounds every link's queue; 0 means unbounded. Set before
	// Run; read-only after.
	capacity int
	// pool, when non-nil, recycles payload buffers: Lease draws from it and
	// Release/ReleaseTo return to it. Set before Run; read-only after.
	pool *bufpool.Pool
	// tp delivers messages (transport.go). Always non-nil: NewTopology
	// installs the in-process channel transport. Set before Run; read-only
	// after.
	tp Transport
	// rec, when non-nil, enables restart-from-checkpoint recovery of failed
	// ranks (recovery.go). Set before Run; read-only after.
	rec *Recovery
	// retain holds per-link send retention for halo replay, indexed like
	// links; nil unless recovery is enabled. Each entry is guarded by its
	// link's mu.
	retain []retainLog
	// suppress counts sends each link must swallow after a restart because
	// the pre-crash run already delivered them (armed under link locks,
	// drained atomically on the send path).
	suppress []atomic.Int64
	// sent counts each link's logical sends at the sender, indexed like
	// links; nil unless recovery is enabled. Snapshot send cursors and
	// restart suppression read it instead of the link's enqueue count:
	// over a socket transport a frame can be written but not yet demuxed
	// into its queue, and an in-flight send missing from the cursor would
	// under-arm suppression and deliver a duplicate after restart.
	sent []atomic.Int64

	// Cancellation and deadlock-watchdog state (see cancel.go). canceled is
	// the fast-path flag; done closes when the topology is poisoned; mu
	// guards the rest. Lock order: link.mu before mu.
	canceled  atomic.Bool
	done      chan struct{}
	mu        sync.Mutex
	cause     error
	causeRank int // rank whose failure canceled the run, -1 otherwise
	running   bool
	live      int        // ranks of the current Run still executing
	blocked   int        // ranks registered as blocked in a wait
	waitGen   uint64     // bumped on every wait/live transition
	waits     []waitInfo // per-rank registered wait
	// wake pokes the Run's persistent deadlock watchdog (buffered, so the
	// all-blocked notification never blocks and coalesces while a check is
	// in flight); nil outside Run.
	wake chan struct{}
}

// NewTopology creates a topology of p ranks.
func NewTopology(p int) (*Topology, error) {
	if p < 1 {
		return nil, fmt.Errorf("comm: topology needs at least 1 rank, got %d", p)
	}
	t := &Topology{
		p:         p,
		links:     make([]*link, p*p),
		done:      make(chan struct{}),
		causeRank: -1,
		waits:     make([]waitInfo, p),
	}
	for i := range t.links {
		t.links[i] = newLink()
	}
	t.tp = chanTransport{t}
	return t, nil
}

// P returns the number of ranks.
func (t *Topology) P() int { return t.p }

// SetTrace attaches an execution recorder sized for at least P ranks.
// Must be called before Run; a nil recorder disables tracing (the
// default).
func (t *Topology) SetTrace(tr *trace.Recorder) error {
	if tr != nil && tr.Procs() < t.p {
		return fmt.Errorf("comm: trace recorder sized for %d ranks, topology has %d", tr.Procs(), t.p)
	}
	t.tr = tr
	return nil
}

// commMetrics is the comm substrate's instrument set, resolved once at
// SetMetrics so the hot path pays one nil check and a few atomic adds —
// never a name lookup.
type commMetrics struct {
	sends, recvs         *metrics.Counter
	sendBytes, recvBytes *metrics.Counter
	blockedNs, stalls    *metrics.Counter
	faults, cancels      *metrics.Counter
	// msgCost feeds the drift monitor's α/β estimate: x = payload
	// elements, y = the operation's non-blocked cost in ns.
	msgCost *metrics.Fit
}

// SetMetrics attaches a live-metrics registry sized for at least P ranks;
// every send and receive then updates the comm_* instruments. Must be
// called before Run; a nil registry disables metrics (the default) at the
// cost of one pointer comparison per operation, the same contract as
// SetTrace.
func (t *Topology) SetMetrics(reg *metrics.Registry) error {
	if reg == nil {
		t.cm = nil
		return nil
	}
	if reg.Procs() < t.p {
		return fmt.Errorf("comm: metrics registry sized for %d ranks, topology has %d", reg.Procs(), t.p)
	}
	t.cm = &commMetrics{
		sends:     reg.Counter(metrics.CommSends),
		recvs:     reg.Counter(metrics.CommRecvs),
		sendBytes: reg.Counter(metrics.CommSendBytes),
		recvBytes: reg.Counter(metrics.CommRecvBytes),
		blockedNs: reg.Counter(metrics.CommBlockedNs),
		stalls:    reg.Counter(metrics.CommStalls),
		faults:    reg.Counter(metrics.CommFaults),
		cancels:   reg.Counter(metrics.CommCancels),
		msgCost:   reg.Fit(metrics.ModelCommFit),
	}
	return nil
}

// SetFaults attaches a fault injector consulted on every send and receive.
// Must be called before Run; a nil injector disables injection (the
// default) at the cost of one pointer comparison per operation. Attaching
// an injector drops any buffer pool: injected duplicates and corruptions
// alias payload buffers, which a recycling pool must never see.
func (t *Topology) SetFaults(in *fault.Injector) {
	t.inj = in
	if in != nil {
		t.pool = nil
	}
}

// SetBufPool attaches a buffer pool sized for at least P ranks: Lease then
// draws payload buffers from the caller's shard and Release/ReleaseTo
// return them. Must be called before Run; a nil pool disables recycling
// (the default) at the cost of one pointer comparison per operation, the
// same contract as SetTrace. Pooling is incompatible with fault injection
// (ActDuplicate enqueues one payload twice; ActCorrupt swaps payloads),
// so SetBufPool fails while an injector is attached.
func (t *Topology) SetBufPool(p *bufpool.Pool) error {
	if p == nil {
		t.pool = nil
		return nil
	}
	if t.inj != nil {
		return errors.New("comm: buffer pooling is incompatible with fault injection; detach the injector first")
	}
	if p.Procs() < t.p {
		return fmt.Errorf("comm: buffer pool sized for %d ranks, topology has %d", p.Procs(), t.p)
	}
	t.pool = p
	return nil
}

// BufPool returns the attached pool (nil when pooling is disabled).
func (t *Topology) BufPool() *bufpool.Pool { return t.pool }

// SetLinkCapacity bounds every link to at most n queued messages; senders
// block on a full link until the receiver drains it (backpressure mode).
// n = 0 restores the default unbounded behavior. Must be called before Run.
func (t *Topology) SetLinkCapacity(n int) error {
	if n < 0 {
		return fmt.Errorf("comm: link capacity must be >= 0, got %d", n)
	}
	if n > 0 {
		if _, sock := t.tp.(*sockTransport); sock {
			return errors.New("comm: bounded links are incompatible with socket transports; backpressure needs the in-process transport")
		}
	}
	t.capacity = n
	return nil
}

func (t *Topology) link(from, to int) *link { return t.links[from*t.p+to] }

func (t *Topology) linkIndex(from, to int) int { return from*t.p + to }

// Endpoint returns rank r's handle for sending and receiving.
func (t *Topology) Endpoint(r int) *Endpoint {
	if r < 0 || r >= t.p {
		panic(fmt.Sprintf("comm: endpoint rank %d out of range [0,%d)", r, t.p))
	}
	return &Endpoint{rank: r, topo: t}
}

// Stats is a snapshot of communication volume.
type Stats struct {
	Messages int64
	Elements int64
	// BlockedSends counts sends that had to wait for space on a
	// capacity-bounded link; BlockedSendTime is their summed wait.
	BlockedSends    int64
	BlockedSendTime time.Duration
}

// Bytes reports the volume in bytes at 8 bytes per element.
func (s Stats) Bytes() int64 { return s.Elements * 8 }

// Stats sums message, element, and blocked-send counts over all links.
func (t *Topology) Stats() Stats {
	var s Stats
	for _, l := range t.links {
		l.mu.Lock()
		s.Messages += l.messages
		s.Elements += l.elements
		s.BlockedSends += l.blockedSends
		s.BlockedSendTime += time.Duration(l.blockedNs)
		l.mu.Unlock()
	}
	return s
}

// PendingMessages reports the number of sent-but-unreceived messages, which
// must be zero after a quiescent parallel section. Useful as a test oracle.
func (t *Topology) PendingMessages() int {
	n := 0
	for _, l := range t.links {
		l.mu.Lock()
		n += len(l.queue)
		l.mu.Unlock()
	}
	return n
}

// enqueue appends m to the from→to link queue, blocking while the link is
// at capacity. It reports the time spent blocked and fails if the topology
// is canceled while waiting. Every transport's delivery terminates here, so
// link accounting, backpressure, and send retention are transport-agnostic.
func (t *Topology) enqueue(from, to int, m Message) (time.Duration, error) {
	l := t.link(from, to)
	l.mu.Lock()
	var blocked time.Duration
	if t.capacity > 0 && len(l.queue) >= t.capacity {
		t.beginWait(from, waitInfo{
			op: waitSend, peer: to, tag: m.Tag,
			link: t.linkIndex(from, to), queueLen: len(l.queue),
		})
		t0 := time.Now()
		for len(l.queue) >= t.capacity && !t.canceled.Load() {
			l.cond.Wait()
		}
		blocked = time.Since(t0)
		t.endWait(from)
		l.blockedSends++
		l.blockedNs += int64(blocked)
		if len(l.queue) >= t.capacity {
			l.mu.Unlock()
			return blocked, t.cancelError()
		}
	}
	l.queue = append(l.queue, m)
	l.messages++
	l.elements += int64(len(m.Data))
	if t.retain != nil {
		t.retainLocked(t.linkIndex(from, to), from, m)
	}
	l.mu.Unlock()
	l.cond.Broadcast()
	return blocked, nil
}

// dequeue pops the next message on the from→to link, blocking while the
// link is empty. It reports the time spent blocked and fails on a tag
// mismatch or if the topology is canceled while waiting.
func (t *Topology) dequeue(from, to, tag int) (Message, time.Duration, error) {
	l := t.link(from, to)
	l.mu.Lock()
	defer l.mu.Unlock()
	var blocked time.Duration
	if len(l.queue) == 0 {
		// Only the empty-queue path pays for timestamps: the receiver is
		// about to block anyway, so the cost vanishes into the wait.
		t.beginWait(to, waitInfo{
			op: waitRecv, peer: from, tag: tag, link: t.linkIndex(from, to),
		})
		t0 := time.Now()
		for len(l.queue) == 0 && !t.canceled.Load() {
			l.cond.Wait()
		}
		blocked = time.Since(t0)
		t.endWait(to)
		if len(l.queue) == 0 {
			return Message{}, blocked, t.cancelError()
		}
	}
	m := l.queue[0]
	if m.Tag != tag {
		return Message{}, blocked, fmt.Errorf(
			"comm: tag mismatch on link %d→%d: rank %d expects tag %d from rank %d, but the head-of-line message carries tag %d (queue depth %d)",
			from, to, to, tag, from, m.Tag, len(l.queue))
	}
	copy(l.queue, l.queue[1:])
	l.queue = l.queue[:len(l.queue)-1]
	l.consumed++
	if t.capacity > 0 {
		l.cond.Broadcast() // space freed: wake blocked senders
	}
	return m, blocked, nil
}

// Endpoint is one rank's view of the topology.
type Endpoint struct {
	rank int
	topo *Topology
}

// Rank returns the endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// P returns the topology size.
func (e *Endpoint) P() int { return e.topo.p }

// Lease returns a payload buffer of length n with unspecified contents,
// drawn from this rank's pool shard when a pool is attached and freshly
// allocated otherwise. Sending a leased buffer transfers ownership to the
// receiver, which returns it with ReleaseTo(sender, buf).
func (e *Endpoint) Lease(n int) []float64 { return e.topo.pool.Get(e.rank, n) }

// Release returns a buffer to this rank's own pool shard. A no-op
// without a pool; the caller must not touch the buffer afterwards.
func (e *Endpoint) Release(buf []float64) { e.topo.pool.Put(e.rank, buf) }

// ReleaseTo returns a received buffer to rank's pool shard — pass the
// sending rank, so the shard that leased the buffer is the one refilled.
// In a steady one-way pipeline this is what keeps the upstream sender's
// free list stocked. A no-op without a pool.
func (e *Endpoint) ReleaseTo(rank int, buf []float64) {
	if rank < 0 || rank >= e.topo.p {
		rank = e.rank
	}
	e.topo.pool.Put(rank, buf)
}

// recordFault traces an injected fault firing at rank; the action code
// travels in Seq.
func (t *Topology) recordFault(rank, peer, tag, elems int, out fault.Outcome) {
	if tr := t.tr; tr != nil {
		now := tr.Now()
		ev := trace.Ev(trace.KindFault, rank, now, now)
		ev.Peer, ev.Tag, ev.Elems, ev.Seq = peer, tag, elems, int(out.Action)
		tr.Record(ev)
	}
	if cm := t.cm; cm != nil {
		cm.faults.Add(rank, 1)
	}
}

// recordCancel traces an operation aborted by cancellation.
func (t *Topology) recordCancel(rank, peer, tag int, start int64) {
	if tr := t.tr; tr != nil {
		ev := trace.Ev(trace.KindCancel, rank, start, tr.Now())
		ev.Peer, ev.Tag = peer, tag
		tr.Record(ev)
	}
	if cm := t.cm; cm != nil {
		cm.cancels.Add(rank, 1)
	}
}

// Send delivers data to rank `to` under the given tag. Sends never block on
// unbounded links; with SetLinkCapacity they block while the link is full.
// The payload must not be mutated after sending. Send fails fast once the
// topology is canceled.
func (e *Endpoint) Send(to, tag int, data []float64) error {
	t := e.topo
	if to < 0 || to >= t.p {
		return fmt.Errorf("comm: rank %d sending to invalid rank %d", e.rank, to)
	}
	if to == e.rank {
		return fmt.Errorf("comm: rank %d sending to itself", e.rank)
	}
	if t.canceled.Load() {
		return t.cancelError()
	}
	if t.suppress != nil {
		// A restarted rank replays its wave loop from the last snapshot; the
		// sends it re-issues up to the pre-crash cursor were already
		// delivered (and possibly consumed) before the crash, so they are
		// swallowed here — before the injector, so fault rules don't re-fire,
		// and before link accounting, so Stats match a fault-free run.
		if s := &t.suppress[t.linkIndex(e.rank, to)]; s.Load() > 0 && s.Add(-1) >= 0 {
			if t.pool != nil {
				t.pool.Put(e.rank, data)
			}
			return nil
		}
	}
	dup := false
	if out, fired := t.inj.OnSend(e.rank, to, tag, data); fired {
		t.recordFault(e.rank, to, tag, len(data), out)
		switch out.Action {
		case fault.ActDelay:
			time.Sleep(out.Delay)
		case fault.ActDrop:
			return nil // the send "succeeds"; the message is gone
		case fault.ActDuplicate:
			dup = true
		case fault.ActCorrupt:
			data = out.Data
		case fault.ActStall:
			return t.stall(e.rank, to, tag, fault.OpSend)
		case fault.ActCrash:
			return t.inj.Crash(out, fault.OpSend, e.rank, to, tag)
		}
	}
	tr, cm := t.tr, t.cm
	var t0 int64
	if tr != nil {
		t0 = tr.Now()
	}
	var m0 time.Time
	if cm != nil {
		m0 = time.Now()
	}
	if t.sent != nil {
		// Counted before the transport write so an in-flight frame is
		// already covered by any cursor or suppression arithmetic.
		t.sent[t.linkIndex(e.rank, to)].Add(1)
	}
	blocked, err := t.tp.Send(e.rank, to, Message{Tag: tag, Data: data})
	if err != nil {
		t.recordCancel(e.rank, to, tag, t0)
		return err
	}
	if tr != nil {
		if blocked > 0 {
			bev := trace.Ev(trace.KindBlockedSend, e.rank, t0, t0+int64(blocked))
			bev.Peer, bev.Tag, bev.Blocked = to, tag, int64(blocked)
			tr.Record(bev)
		}
		ev := trace.Ev(trace.KindSend, e.rank, t0, tr.Now())
		ev.Peer, ev.Tag, ev.Elems, ev.Blocked = to, tag, len(data), int64(blocked)
		tr.Record(ev)
	}
	if cm != nil {
		cm.sends.Add(e.rank, 1)
		cm.sendBytes.Add(e.rank, int64(8*len(data)))
		if blocked > 0 {
			cm.stalls.Add(e.rank, 1)
			cm.blockedNs.Add(e.rank, int64(blocked))
		}
		cm.msgCost.Observe(e.rank, float64(len(data)), float64(time.Since(m0)-blocked))
	}
	if dup {
		if t.sent != nil {
			t.sent[t.linkIndex(e.rank, to)].Add(1)
		}
		if _, err := t.tp.Send(e.rank, to, Message{Tag: tag, Data: data}); err != nil {
			return err
		}
		if cm != nil {
			cm.sends.Add(e.rank, 1)
			cm.sendBytes.Add(e.rank, int64(8*len(data)))
		}
	}
	return nil
}

// Recv blocks until the next message from rank `from` arrives and returns
// its payload. The head-of-line message must carry the expected tag;
// deterministic programs receive in send order. Recv fails fast once the
// topology is canceled.
func (e *Endpoint) Recv(from, tag int) ([]float64, error) {
	t := e.topo
	if from < 0 || from >= t.p {
		return nil, fmt.Errorf("comm: rank %d receiving from invalid rank %d", e.rank, from)
	}
	if from == e.rank {
		return nil, fmt.Errorf("comm: rank %d receiving from itself", e.rank)
	}
	if t.canceled.Load() {
		return nil, t.cancelError()
	}
	if out, fired := t.inj.OnRecv(e.rank, from, tag); fired {
		t.recordFault(e.rank, from, tag, 0, out)
		switch out.Action {
		case fault.ActDelay:
			time.Sleep(out.Delay)
		case fault.ActStall:
			return nil, t.stall(e.rank, from, tag, fault.OpRecv)
		case fault.ActCrash:
			return nil, t.inj.Crash(out, fault.OpRecv, e.rank, from, tag)
		}
	}
	tr, cm := t.tr, t.cm
	var t0 int64
	if tr != nil {
		t0 = tr.Now()
	}
	var m0 time.Time
	if cm != nil {
		m0 = time.Now()
	}
	m, blocked, err := t.tp.Recv(from, e.rank, tag)
	if err != nil {
		if errors.Is(err, ErrCanceled) {
			t.recordCancel(e.rank, from, tag, t0)
			return nil, err
		}
		return nil, err
	}
	if tr != nil {
		ev := trace.Ev(trace.KindRecv, e.rank, t0, tr.Now())
		ev.Peer, ev.Tag, ev.Elems, ev.Blocked = from, tag, len(m.Data), int64(blocked)
		tr.Record(ev)
	}
	if cm != nil {
		cm.recvs.Add(e.rank, 1)
		cm.recvBytes.Add(e.rank, int64(8*len(m.Data)))
		if blocked > 0 {
			cm.blockedNs.Add(e.rank, int64(blocked))
		}
		cm.msgCost.Observe(e.rank, float64(len(m.Data)), float64(time.Since(m0)-blocked))
	}
	return m.Data, nil
}

// Run spawns one goroutine per rank executing body and waits for all of
// them. It is the SPMD entry point of the runtime. When a rank's body
// returns an error, the topology is canceled so blocked peers unwind
// instead of hanging, and Run reports that rank's error wrapped with the
// cancellation; a watchdog-diagnosed deadlock surfaces as a DeadlockError.
func (t *Topology) Run(body func(e *Endpoint) error) error {
	t.mu.Lock()
	if t.running {
		t.mu.Unlock()
		return errors.New("comm: Run already in progress on this topology")
	}
	t.running = true
	t.live = t.p
	t.waitGen++
	wake := make(chan struct{}, 1)
	t.wake = wake
	t.mu.Unlock()
	go t.watchdog(wake)

	errs := make([]error, t.p)
	var wg sync.WaitGroup
	wg.Add(t.p)
	for r := 0; r < t.p; r++ {
		go func(r int) {
			defer wg.Done()
			ep := t.Endpoint(r)
			err := body(ep)
			// Recovery: a recoverable failure restarts the body in this same
			// goroutine — the rank never retires, so the watchdog keeps
			// counting it live and peers blocked on its messages are simply
			// waiting, not deadlocked.
			for attempt := 1; err != nil && t.tryRestart(r, attempt, err); attempt++ {
				err = body(ep)
			}
			errs[r] = err
			if err != nil && !errors.Is(err, ErrCanceled) {
				// Cancel before retiring so the watchdog can never diagnose
				// a "deadlock" among peers this failure is about to unblock.
				t.cancel(r, err)
			}
			t.rankDone(r)
		}(r)
	}
	wg.Wait()

	t.mu.Lock()
	t.running = false
	t.wake = nil
	canceled, cause, causeRank := t.canceled.Load(), t.cause, t.causeRank
	t.mu.Unlock()
	close(wake) // no rank is left to poke the watchdog; retire it
	if canceled {
		if causeRank >= 0 {
			return fmt.Errorf("comm: rank %d failed, peers canceled: %w", causeRank, cause)
		}
		var dl *DeadlockError
		if errors.As(cause, &dl) {
			return dl
		}
		return &CancelError{Cause: cause}
	}
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("comm: rank %d: %w", r, err)
		}
	}
	return nil
}
