// Package comm is the message-passing substrate of the parallel runtime: a
// fully connected topology of ranks exchanging tagged float64 payloads over
// unbounded FIFO links, in the style of MPI point-to-point communication.
//
// Links are unbounded so that an eagerly pipelining sender never blocks (the
// paper's runtime assumes asynchronous sends); receives block until a
// matching message arrives. Every link counts messages and elements so that
// experiments can report communication volume exactly.
package comm

import (
	"fmt"
	"sync"
	"time"

	"wavefront/internal/trace"
)

// Message is one point-to-point transfer.
type Message struct {
	// Tag discriminates message streams between the same pair of ranks.
	Tag int
	// Data is the payload; ownership transfers to the receiver.
	Data []float64
}

// link is an unbounded FIFO queue between one ordered pair of ranks.
type link struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []Message
	// accounting
	messages int64
	elements int64
}

func newLink() *link {
	l := &link{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *link) send(m Message) {
	l.mu.Lock()
	l.queue = append(l.queue, m)
	l.messages++
	l.elements += int64(len(m.Data))
	l.mu.Unlock()
	l.cond.Signal()
}

func (l *link) recv(tag int) (Message, time.Duration, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var blocked time.Duration
	if len(l.queue) == 0 {
		// Only the empty-queue path pays for timestamps: the receiver is
		// about to block anyway, so the cost vanishes into the wait.
		t0 := time.Now()
		for len(l.queue) == 0 {
			l.cond.Wait()
		}
		blocked = time.Since(t0)
	}
	m := l.queue[0]
	if m.Tag != tag {
		return Message{}, blocked, fmt.Errorf("comm: receive tag %d but head-of-line message has tag %d", tag, m.Tag)
	}
	copy(l.queue, l.queue[1:])
	l.queue = l.queue[:len(l.queue)-1]
	return m, blocked, nil
}

// Topology is a set of P ranks with a link for every ordered pair.
type Topology struct {
	p     int
	links []*link // links[from*p+to]
	// tr, when non-nil, records every send and receive (with blocked-wait
	// durations) to the per-rank trace. Set before Run; read-only after.
	tr *trace.Recorder
}

// NewTopology creates a topology of p ranks.
func NewTopology(p int) (*Topology, error) {
	if p < 1 {
		return nil, fmt.Errorf("comm: topology needs at least 1 rank, got %d", p)
	}
	t := &Topology{p: p, links: make([]*link, p*p)}
	for i := range t.links {
		t.links[i] = newLink()
	}
	return t, nil
}

// P returns the number of ranks.
func (t *Topology) P() int { return t.p }

// SetTrace attaches an execution recorder sized for at least P ranks.
// Must be called before Run; a nil recorder disables tracing (the
// default).
func (t *Topology) SetTrace(tr *trace.Recorder) error {
	if tr != nil && tr.Procs() < t.p {
		return fmt.Errorf("comm: trace recorder sized for %d ranks, topology has %d", tr.Procs(), t.p)
	}
	t.tr = tr
	return nil
}

func (t *Topology) link(from, to int) *link { return t.links[from*t.p+to] }

// Endpoint returns rank r's handle for sending and receiving.
func (t *Topology) Endpoint(r int) *Endpoint {
	if r < 0 || r >= t.p {
		panic(fmt.Sprintf("comm: endpoint rank %d out of range [0,%d)", r, t.p))
	}
	return &Endpoint{rank: r, topo: t}
}

// Stats is a snapshot of communication volume.
type Stats struct {
	Messages int64
	Elements int64
}

// Bytes reports the volume in bytes at 8 bytes per element.
func (s Stats) Bytes() int64 { return s.Elements * 8 }

// Stats sums message and element counts over all links.
func (t *Topology) Stats() Stats {
	var s Stats
	for _, l := range t.links {
		l.mu.Lock()
		s.Messages += l.messages
		s.Elements += l.elements
		l.mu.Unlock()
	}
	return s
}

// PendingMessages reports the number of sent-but-unreceived messages, which
// must be zero after a quiescent parallel section. Useful as a test oracle.
func (t *Topology) PendingMessages() int {
	n := 0
	for _, l := range t.links {
		l.mu.Lock()
		n += len(l.queue)
		l.mu.Unlock()
	}
	return n
}

// Endpoint is one rank's view of the topology.
type Endpoint struct {
	rank int
	topo *Topology
}

// Rank returns the endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// P returns the topology size.
func (e *Endpoint) P() int { return e.topo.p }

// Send delivers data to rank `to` under the given tag. Sends never block.
// The payload must not be mutated after sending.
func (e *Endpoint) Send(to, tag int, data []float64) error {
	if to < 0 || to >= e.topo.p {
		return fmt.Errorf("comm: rank %d sending to invalid rank %d", e.rank, to)
	}
	if to == e.rank {
		return fmt.Errorf("comm: rank %d sending to itself", e.rank)
	}
	if tr := e.topo.tr; tr != nil {
		t0 := tr.Now()
		e.topo.link(e.rank, to).send(Message{Tag: tag, Data: data})
		ev := trace.Ev(trace.KindSend, e.rank, t0, tr.Now())
		ev.Peer, ev.Tag, ev.Elems = to, tag, len(data)
		tr.Record(ev)
		return nil
	}
	e.topo.link(e.rank, to).send(Message{Tag: tag, Data: data})
	return nil
}

// Recv blocks until the next message from rank `from` arrives and returns
// its payload. The head-of-line message must carry the expected tag;
// deterministic programs receive in send order.
func (e *Endpoint) Recv(from, tag int) ([]float64, error) {
	if from < 0 || from >= e.topo.p {
		return nil, fmt.Errorf("comm: rank %d receiving from invalid rank %d", e.rank, from)
	}
	if from == e.rank {
		return nil, fmt.Errorf("comm: rank %d receiving from itself", e.rank)
	}
	tr := e.topo.tr
	var t0 int64
	if tr != nil {
		t0 = tr.Now()
	}
	m, blocked, err := e.topo.link(from, e.rank).recv(tag)
	if err != nil {
		return nil, fmt.Errorf("comm: rank %d from %d: %w", e.rank, from, err)
	}
	if tr != nil {
		ev := trace.Ev(trace.KindRecv, e.rank, t0, tr.Now())
		ev.Peer, ev.Tag, ev.Elems, ev.Blocked = from, tag, len(m.Data), int64(blocked)
		tr.Record(ev)
	}
	return m.Data, nil
}

// Run spawns one goroutine per rank executing body and waits for all of
// them; the first non-nil error is returned. It is the SPMD entry point of
// the runtime.
func (t *Topology) Run(body func(e *Endpoint) error) error {
	errs := make([]error, t.p)
	var wg sync.WaitGroup
	wg.Add(t.p)
	for r := 0; r < t.p; r++ {
		go func(r int) {
			defer wg.Done()
			errs[r] = body(t.Endpoint(r))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("comm: rank %d: %w", r, err)
		}
	}
	return nil
}
