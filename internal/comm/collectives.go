package comm

// Collective operations built from point-to-point messages, rooted at rank
// 0. Tags below 0 are reserved for collectives so user tags (>= 0) never
// collide with them.

const (
	tagBarrierUp   = -1
	tagBarrierDown = -2
	tagReduce      = -3
	tagBcast       = -4
)

// Barrier blocks until every rank has entered it. Implemented as a gather
// to rank 0 followed by a broadcast, costing 2(p-1) messages.
func (e *Endpoint) Barrier() error {
	p := e.P()
	if p == 1 {
		return nil
	}
	if e.rank == 0 {
		for r := 1; r < p; r++ {
			if _, err := e.Recv(r, tagBarrierUp); err != nil {
				return err
			}
		}
		for r := 1; r < p; r++ {
			if err := e.Send(r, tagBarrierDown, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := e.Send(0, tagBarrierUp, nil); err != nil {
		return err
	}
	_, err := e.Recv(0, tagBarrierDown)
	return err
}

// ReduceOp combines two partial values.
type ReduceOp func(a, b float64) float64

// MaxOp and SumOp are the common reductions.
var (
	MaxOp ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	SumOp ReduceOp = func(a, b float64) float64 { return a + b }
)

// AllReduce combines each rank's contribution with op and returns the
// result on every rank.
func (e *Endpoint) AllReduce(v float64, op ReduceOp) (float64, error) {
	p := e.P()
	if p == 1 {
		return v, nil
	}
	if e.rank == 0 {
		acc := v
		for r := 1; r < p; r++ {
			d, err := e.Recv(r, tagReduce)
			if err != nil {
				return 0, err
			}
			acc = op(acc, d[0])
			e.ReleaseTo(r, d)
		}
		for r := 1; r < p; r++ {
			out := e.Lease(1)
			out[0] = acc
			if err := e.Send(r, tagBcast, out); err != nil {
				return 0, err
			}
		}
		return acc, nil
	}
	up := e.Lease(1)
	up[0] = v
	if err := e.Send(0, tagReduce, up); err != nil {
		return 0, err
	}
	d, err := e.Recv(0, tagBcast)
	if err != nil {
		return 0, err
	}
	out := d[0]
	e.ReleaseTo(0, d)
	return out, nil
}

// Broadcast sends rank 0's value to every rank and returns it.
func (e *Endpoint) Broadcast(v float64) (float64, error) {
	p := e.P()
	if p == 1 {
		return v, nil
	}
	if e.rank == 0 {
		for r := 1; r < p; r++ {
			out := e.Lease(1)
			out[0] = v
			if err := e.Send(r, tagBcast, out); err != nil {
				return 0, err
			}
		}
		return v, nil
	}
	d, err := e.Recv(0, tagBcast)
	if err != nil {
		return 0, err
	}
	out := d[0]
	e.ReleaseTo(0, d)
	return out, nil
}
