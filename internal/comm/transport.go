package comm

// The transport abstraction: how a message physically travels from the
// sender's Endpoint.Send to the receiver's link queue. The Topology keeps
// the policy layer — fault injection, tracing, metrics, cancellation, the
// deadlock watchdog, and the per-link FIFO queues receivers block on — and
// delegates only the delivery step to a Transport, so every implementation
// inherits the same ordering, accounting, and diagnosis semantics.
//
// Two implementations ship:
//
//   - chanTransport (the default): in-process delivery straight into the
//     link queue under its lock. Zero additional cost, zero additional
//     allocations — the steady-state pooled path is byte-for-byte the
//     pre-transport code path.
//   - sockTransport (transport_sock.go): loopback TCP or unix-domain
//     sockets, one connection per ordered rank pair, with per-link write
//     deadlines, bounded exponential-backoff retry, and reconnect-on-drop.
//     Frames are sequence-numbered so a reconnect never duplicates or
//     reorders delivery.

import (
	"errors"
	"fmt"
	"time"
)

// Transport delivers messages between ranks. Send runs on the sending
// rank's goroutine and reports time spent blocked (backpressure); Recv runs
// on the receiving rank's goroutine and blocks until the next message on
// the (from, to) link is available. Cancel unblocks in-flight operations
// after the topology is poisoned; Close releases sockets and goroutines.
// Implementations must preserve per-link FIFO order and exactly-once
// delivery — the wavefront runtime's bit-identity rests on both.
type Transport interface {
	Send(from, to int, m Message) (time.Duration, error)
	Recv(from, to, tag int) (Message, time.Duration, error)
	Cancel()
	Close() error
}

// TransportKind selects a built-in transport.
type TransportKind uint8

const (
	// TransportChan is in-process channel delivery (the zero-alloc default).
	TransportChan TransportKind = iota
	// TransportTCP is loopback TCP, one connection per ordered rank pair.
	TransportTCP
	// TransportUnix is a unix-domain socket in the system temp directory.
	TransportUnix
)

// String names the kind the way the wavebench -transport flag spells it.
func (k TransportKind) String() string {
	switch k {
	case TransportTCP:
		return "tcp"
	case TransportUnix:
		return "unix"
	default:
		return "chan"
	}
}

// ParseTransportKind parses a -transport flag value.
func ParseTransportKind(s string) (TransportKind, error) {
	switch s {
	case "", "chan":
		return TransportChan, nil
	case "tcp":
		return TransportTCP, nil
	case "unix":
		return TransportUnix, nil
	}
	return TransportChan, fmt.Errorf("comm: unknown transport %q (want chan, tcp, or unix)", s)
}

// Socket-transport defaults, used when the corresponding TransportConfig
// field is zero.
const (
	defaultSockTimeout  = 2 * time.Second
	defaultRetryBase    = 2 * time.Millisecond
	defaultRetryMax     = 200 * time.Millisecond
	defaultMaxAttempts  = 6
	defaultMaxRestarts  = 3
	transportFrameMagic = 0x57465450 // "WFTP"
)

// TransportConfig selects and tunes the delivery mechanism. The zero value
// is the in-process channel transport.
type TransportConfig struct {
	// Kind selects the transport.
	Kind TransportKind
	// Addr is the listen address: "host:port" for TCP (default
	// "127.0.0.1:0") or a socket path for unix (default: a fresh file in
	// the system temp directory, removed on Close).
	Addr string
	// Timeout is the per-link write deadline per frame attempt (socket
	// transports; default 2s).
	Timeout time.Duration
	// RetryBase is the first backoff after a failed frame attempt; each
	// retry doubles it up to RetryMax (defaults 2ms and 200ms).
	RetryBase time.Duration
	RetryMax  time.Duration
	// MaxAttempts bounds the attempts per frame, dial included (default 6).
	MaxAttempts int
}

func (c TransportConfig) withDefaults() TransportConfig {
	if c.Timeout <= 0 {
		c.Timeout = defaultSockTimeout
	}
	if c.RetryBase <= 0 {
		c.RetryBase = defaultRetryBase
	}
	if c.RetryMax < c.RetryBase {
		c.RetryMax = defaultRetryMax
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = defaultMaxAttempts
	}
	return c
}

// chanTransport is the in-process default: delivery is an enqueue on the
// receiver's link under its lock, exactly the pre-transport hot path, so
// the pooled steady state still allocates nothing.
type chanTransport struct{ t *Topology }

func (c chanTransport) Send(from, to int, m Message) (time.Duration, error) {
	return c.t.enqueue(from, to, m)
}

func (c chanTransport) Recv(from, to, tag int) (Message, time.Duration, error) {
	return c.t.dequeue(from, to, tag)
}

func (c chanTransport) Cancel()      {}
func (c chanTransport) Close() error { return nil }

// SetTransport selects the delivery mechanism. Must be called before Run;
// socket transports bind their listener and spawn demux goroutines here,
// so callers should defer Close. Socket transports are incompatible with
// SetLinkCapacity: backpressure accounting needs the sender to see the
// receiver's queue, which only the in-process transport can.
func (t *Topology) SetTransport(cfg TransportConfig) error {
	switch cfg.Kind {
	case TransportChan:
		t.closeTransport()
		t.tp = chanTransport{t}
		return nil
	case TransportTCP, TransportUnix:
		if t.capacity > 0 {
			return errors.New("comm: socket transports do not support bounded links (SetLinkCapacity)")
		}
		st, err := newSockTransport(t, cfg.withDefaults())
		if err != nil {
			return err
		}
		t.closeTransport()
		t.tp = st
		return nil
	}
	return fmt.Errorf("comm: unknown transport kind %d", cfg.Kind)
}

// closeTransport releases a previously attached socket transport.
func (t *Topology) closeTransport() {
	if t.tp != nil {
		t.tp.Close()
	}
}

// Close releases the topology's transport (sockets, demux goroutines, the
// unix socket file). Safe to call on the default channel transport and
// idempotent; a closed topology must not Run again over a socket transport.
func (t *Topology) Close() error {
	if t.tp == nil {
		return nil
	}
	return t.tp.Close()
}
