package dep

import (
	"errors"
	"math/rand"
	"testing"

	"wavefront/internal/grid"
)

func udv(kind Kind, dist ...int) UDV {
	return UDV{Dist: grid.Direction(dist), Kind: kind}
}

// TestFigure3 checks the two loop nests of the paper's Figure 3: the
// unprimed statement a := 2*a@north carries an anti-dependence and iterates
// i from high to low; the primed statement a := 2*a'@north carries a true
// dependence and iterates i from low to high.
func TestFigure3(t *testing.T) {
	north := grid.Direction{-1, 0}

	anti := FromUnprimed(north, false, "a", 0)
	spec, err := Derive(2, []UDV{anti})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Dirs[0] != grid.HighToLow {
		t.Errorf("unprimed @north: dim0 %v, want high->low", spec.Dirs[0])
	}

	prime := FromPrimed(north, "a", 0)
	if !prime.Dist.Equal(grid.Direction{1, 0}) {
		t.Errorf("primed UDV = %v, want (1,0)", prime.Dist)
	}
	spec, err = Derive(2, []UDV{prime})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Dirs[0] != grid.LowToHigh {
		t.Errorf("primed @north: dim0 %v, want low->high", spec.Dirs[0])
	}
}

// TestPaperExamples covers the four legality examples of §2.2 at the
// dependence level (primed references, so distances are negated
// directions).
func TestPaperExamples(t *testing.T) {
	primed := func(dirs ...grid.Direction) []UDV {
		var out []UDV
		for _, d := range dirs {
			out = append(out, FromPrimed(d, "a", 0))
		}
		return out
	}

	// Example 1: d1=d2=(-1,0). Legal; wavefront along dim 0.
	spec, err := Derive(2, primed(grid.Direction{-1, 0}, grid.Direction{-1, 0}))
	if err != nil {
		t.Fatalf("example 1: %v", err)
	}
	if spec.Dirs[0] != grid.LowToHigh {
		t.Errorf("example 1: dim0 %v", spec.Dirs[0])
	}

	// Example 2: d1=(-1,0), d2=(0,-1). Legal.
	if _, err := Derive(2, primed(grid.Direction{-1, 0}, grid.Direction{0, -1})); err != nil {
		t.Fatalf("example 2: %v", err)
	}

	// Example 3: d1=(-1,0), d2=(1,1). Legal despite the non-simple WSV.
	spec, err = Derive(2, primed(grid.Direction{-1, 0}, grid.Direction{1, 1}))
	if err != nil {
		t.Fatalf("example 3: %v", err)
	}
	if !spec.Satisfies(primed(grid.Direction{-1, 0}, grid.Direction{1, 1})) {
		t.Error("example 3: derived spec does not satisfy its own UDVs")
	}

	// Example 4: d1=(0,-1), d2=(0,1). Over-constrained.
	_, err = Derive(2, primed(grid.Direction{0, -1}, grid.Direction{0, 1}))
	var oc *OverconstrainedError
	if !errors.As(err, &oc) {
		t.Fatalf("example 4: err = %v, want OverconstrainedError", err)
	}
}

// TestExample3Structure pins down the loop structure of example 3: the
// second dimension must be outermost (it is the wavefront dimension) since
// dimension 0 alone cannot order both dependences.
func TestExample3Structure(t *testing.T) {
	udvs := []UDV{
		FromPrimed(grid.Direction{-1, 0}, "a", 0), // dist (1,0)
		FromPrimed(grid.Direction{1, 1}, "a", 0),  // dist (-1,-1)
	}
	spec, err := Derive(2, udvs)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Perm[0] != 1 {
		t.Errorf("outer dim = %d, want 1", spec.Perm[0])
	}
	if spec.Dirs[1] != grid.HighToLow {
		t.Errorf("dim1 dir = %v, want high->low", spec.Dirs[1])
	}
	if spec.Dirs[0] != grid.LowToHigh {
		t.Errorf("dim0 dir = %v, want low->high", spec.Dirs[0])
	}
}

func TestAntiPairNeedsTemp(t *testing.T) {
	// a := a@north + a@south in place: contradictory anti-dependences.
	udvs := []UDV{
		FromUnprimed(grid.Direction{-1, 0}, false, "a", 0),
		FromUnprimed(grid.Direction{1, 0}, false, "a", 0),
	}
	if _, err := Derive(2, udvs); err == nil {
		t.Fatal("opposite anti-dependences must be over-constrained")
	}
}

func TestHiddenOverconstraint(t *testing.T) {
	// WSV would be (-,±) which has a minus entry, yet no loop nest exists:
	// the per-dimension summary loses the pairing. The dep algorithm must
	// still reject it.
	udvs := []UDV{
		FromPrimed(grid.Direction{-1, 0}, "a", 0), // (1,0)
		FromPrimed(grid.Direction{0, -1}, "a", 0), // (0,1)
		FromPrimed(grid.Direction{0, 1}, "a", 0),  // (0,-1)
	}
	if _, err := Derive(2, udvs); err == nil {
		t.Fatal("expected over-constraint")
	}
}

func TestZeroDistanceUnconstrained(t *testing.T) {
	spec, err := Derive(2, []UDV{udv(True, 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Perm[0] != 0 || spec.Dirs[0] != grid.LowToHigh || spec.Dirs[1] != grid.LowToHigh {
		t.Errorf("zero-distance must yield identity nest, got %v", spec)
	}
}

func TestIdentityPreference(t *testing.T) {
	// With no constraints the identity nest is chosen.
	spec, err := Derive(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range spec.Perm {
		if d != i {
			t.Errorf("perm[%d] = %d", i, d)
		}
		if spec.Dirs[i] != grid.LowToHigh {
			t.Errorf("dirs[%d] = %v", i, spec.Dirs[i])
		}
	}
}

func TestDimOrderPreference(t *testing.T) {
	// An unconstrained derivation with DimOrder [1,0] puts dim 1 outermost,
	// i.e. dim 0 innermost — the column-major cache preference.
	spec, err := DerivePreferred(2, nil, Preference{DimOrder: []int{1, 0}, PreferLow: true})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Perm[0] != 1 || spec.Perm[1] != 0 {
		t.Errorf("perm = %v, want [1 0]", spec.Perm)
	}
}

func TestRankMismatchRejected(t *testing.T) {
	if _, err := Derive(2, []UDV{udv(True, 1)}); err == nil {
		t.Error("rank mismatch must fail")
	}
}

// TestDeriveSoundRandom: whenever Derive succeeds, the returned spec must
// satisfy every UDV; whenever it fails, brute force over all permutations
// and directions must also fail (completeness for small ranks).
func TestDeriveSoundRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		rank := 1 + rng.Intn(3)
		nu := rng.Intn(4)
		var udvs []UDV
		for i := 0; i < nu; i++ {
			dist := make(grid.Direction, rank)
			for d := range dist {
				dist[d] = rng.Intn(5) - 2
			}
			udvs = append(udvs, UDV{Dist: dist, Kind: True})
		}
		spec, err := Derive(rank, udvs)
		if err == nil {
			if !spec.Satisfies(udvs) {
				t.Fatalf("trial %d: spec %v does not satisfy %v", trial, spec, udvs)
			}
			continue
		}
		if found, bf := bruteForce(rank, udvs); found {
			t.Fatalf("trial %d: Derive failed but %v satisfies %v", trial, bf, udvs)
		}
	}
}

// bruteForce searches all dimension permutations and direction assignments.
func bruteForce(rank int, udvs []UDV) (bool, LoopSpec) {
	perms := permutations(rank)
	for _, perm := range perms {
		for mask := 0; mask < 1<<rank; mask++ {
			spec := LoopSpec{Perm: perm, Dirs: make([]grid.LoopDir, rank)}
			for d := 0; d < rank; d++ {
				if mask&(1<<d) != 0 {
					spec.Dirs[d] = grid.HighToLow
				}
			}
			if spec.Satisfies(udvs) {
				return true, spec
			}
		}
	}
	return false, LoopSpec{}
}

func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, sub := range permutations(n - 1) {
		for pos := 0; pos <= len(sub); pos++ {
			p := make([]int, 0, n)
			p = append(p, sub[:pos]...)
			p = append(p, n-1)
			p = append(p, sub[pos:]...)
			out = append(out, p)
		}
	}
	return out
}
