// Package dep implements array-level dependence analysis for scan blocks:
// unconstrained distance vectors (UDVs) and the algorithm that derives a
// legal loop structure (a dimension permutation plus a per-dimension
// iteration direction) or reports the block as over-constrained.
//
// Unconstrained distance vectors (Lewis, Lin, Snyder, PLDI'98) characterize
// dependences by dimensions of the *array* rather than of an iteration
// space, because in an array language the loop nest does not exist until
// after the analysis runs. A UDV is "unconstrained" in that it does not
// presuppose a loop order; the derivation below chooses the order.
//
// The prime operator transforms what an array language would otherwise
// interpret as an anti-dependence into a true dependence; its UDV is the
// negated shift direction. Non-primed shifted references to arrays written
// in the block contribute anti-dependences (the shift direction itself) when
// the writer is the same or a later statement, and true dependences (the
// negated direction) when the writer is an earlier statement, since the
// reader must then observe the earlier statement's completed values.
package dep

import (
	"fmt"
	"strings"

	"wavefront/internal/grid"
)

// Kind classifies a dependence.
type Kind int8

const (
	// True (flow) dependence: the read must observe the write.
	True Kind = iota
	// Anti dependence: the read must precede the overwrite.
	Anti
	// Output dependence: two writes to the same element.
	Output
)

func (k Kind) String() string {
	switch k {
	case True:
		return "true"
	case Anti:
		return "anti"
	case Output:
		return "output"
	}
	return fmt.Sprintf("Kind(%d)", int8(k))
}

// UDV is an unconstrained distance vector: for the loop nest to be legal,
// the iteration at offset Dist from the current one must execute first, i.e.
// Dist must be lexicographically positive (or all-zero) under the chosen
// dimension order and iteration directions.
type UDV struct {
	Dist grid.Direction
	Kind Kind
	// Array and Stmt identify the provenance for diagnostics; Stmt is the
	// index of the reading (or second-writing) statement in its block.
	Array string
	Stmt  int
}

func (u UDV) String() string {
	return fmt.Sprintf("%s dep %v on %q (stmt %d)", u.Kind, u.Dist, u.Array, u.Stmt)
}

// Zero reports whether the distance is the zero vector. Zero-distance
// dependences are satisfied by statement order within a single iteration and
// impose no loop constraint.
func (u UDV) Zero() bool { return grid.Direction(u.Dist).Zero() }

// FromPrimed returns the true-dependence UDV induced by a primed reference
// A'@d: the negation of d.
func FromPrimed(d grid.Direction, array string, stmt int) UDV {
	return UDV{Dist: d.Negate(), Kind: True, Array: array, Stmt: stmt}
}

// FromUnprimed returns the UDV induced by a non-primed shifted reference
// A@d to an array written in the block. writerEarlier indicates whether the
// (nearest) writing statement lexically precedes the reading statement.
func FromUnprimed(d grid.Direction, writerEarlier bool, array string, stmt int) UDV {
	if writerEarlier {
		return UDV{Dist: d.Negate(), Kind: True, Array: array, Stmt: stmt}
	}
	return UDV{Dist: append(grid.Direction(nil), d...), Kind: Anti, Array: array, Stmt: stmt}
}

// LoopSpec describes a loop nest over the dimensions of a data space:
// Perm[0] is the dimension of the outermost loop, and Dirs[k] is the
// iteration direction of the loop over dimension k (indexed by dimension,
// not by nest level).
type LoopSpec struct {
	Perm []int
	Dirs []grid.LoopDir
}

// Identity returns the canonical loop nest: dimension 0 outermost, all loops
// running low to high.
func Identity(rank int) LoopSpec {
	s := LoopSpec{Perm: make([]int, rank), Dirs: make([]grid.LoopDir, rank)}
	for i := range s.Perm {
		s.Perm[i] = i
	}
	return s
}

func (s LoopSpec) String() string {
	parts := make([]string, len(s.Perm))
	for lvl, d := range s.Perm {
		parts[lvl] = fmt.Sprintf("dim%d %s", d, s.Dirs[d])
	}
	return strings.Join(parts, " > ")
}

// Satisfies reports whether every non-zero UDV is lexicographically positive
// under the spec: scanning dimensions outermost-first, the first nonzero
// component (after flipping HighToLow dimensions) must be positive.
func (s LoopSpec) Satisfies(udvs []UDV) bool {
	for _, u := range udvs {
		if !s.satisfiesOne(u) {
			return false
		}
	}
	return true
}

func (s LoopSpec) satisfiesOne(u UDV) bool {
	for _, dim := range s.Perm {
		c := u.Dist[dim]
		if s.Dirs[dim] == grid.HighToLow {
			c = -c
		}
		if c > 0 {
			return true
		}
		if c < 0 {
			return false
		}
	}
	return true // all-zero distance: satisfied by statement order
}

// OverconstrainedError reports that no loop nest can respect the block's
// dependences, carrying a witness UDV that could not be satisfied.
type OverconstrainedError struct {
	Witness UDV
}

func (e *OverconstrainedError) Error() string {
	return fmt.Sprintf("dep: scan block is over-constrained: no loop nest satisfies %s", e.Witness)
}

// Preference biases Derive's search. DimOrder lists dimensions from most to
// least preferred for the outer loop positions; nil means 0, 1, 2, ....
// PreferLow, when true (the default via Derive), tries low-to-high before
// high-to-low for each dimension. Innermost lists dimensions the search
// should push toward the inner loop positions when the dependences allow —
// span-capable executors use it to bias the longest unit-stride dimension
// innermost; nil applies no bias.
type Preference struct {
	DimOrder  []int
	PreferLow bool
	Innermost []int
}

// Derive finds a loop structure satisfying the UDVs, preferring the identity
// nest (dimension 0 outermost, all loops low to high) and deviating only as
// the dependences require. It returns an *OverconstrainedError if no loop
// nest exists.
func Derive(rank int, udvs []UDV) (LoopSpec, error) {
	return DerivePreferred(rank, udvs, Preference{PreferLow: true})
}

// DerivePreferred is Derive with an explicit search bias.
func DerivePreferred(rank int, udvs []UDV, pref Preference) (LoopSpec, error) {
	for _, u := range udvs {
		if len(u.Dist) != rank {
			return LoopSpec{}, fmt.Errorf("dep: UDV %v has rank %d, want %d", u, len(u.Dist), rank)
		}
	}
	order := pref.DimOrder
	if order == nil {
		order = make([]int, rank)
		for i := range order {
			order[i] = i
		}
	}
	if len(pref.Innermost) > 0 {
		// The search assigns loops outermost-first, so moving a dimension to
		// the back of the preference order biases it innermost. Later entries
		// of Innermost are pushed deeper (moved to the back last).
		inner := make(map[int]bool, len(pref.Innermost))
		for _, k := range pref.Innermost {
			if k >= 0 && k < rank {
				inner[k] = true
			}
		}
		reordered := make([]int, 0, len(order))
		for _, k := range order {
			if !inner[k] {
				reordered = append(reordered, k)
			}
		}
		for _, k := range pref.Innermost {
			if inner[k] {
				reordered = append(reordered, k)
				inner[k] = false
			}
		}
		order = reordered
	}
	// Only non-zero UDVs constrain the nest.
	var active []UDV
	for _, u := range udvs {
		if !u.Zero() {
			active = append(active, u)
		}
	}
	spec := LoopSpec{Perm: make([]int, 0, rank), Dirs: make([]grid.LoopDir, rank)}
	used := make([]bool, rank)
	if derive(order, used, active, &spec, pref.PreferLow) {
		return spec, nil
	}
	// Over-constrained: find a witness for the error message. Some UDV has a
	// dimension-wise conflict with another; report the first UDV that no
	// single-dimension choice can make lexicographically positive together
	// with the rest. For diagnostics the first active UDV suffices when no
	// better witness is found.
	witness := active[0]
	for _, u := range active {
		if conflictsEverywhere(u, active) {
			witness = u
			break
		}
	}
	return LoopSpec{}, &OverconstrainedError{Witness: witness}
}

// derive recursively chooses the next-outermost dimension. A dimension k
// with direction s is feasible if every still-unsatisfied UDV has component
// >= 0 in k after flipping (so none is made lexicographically negative);
// UDVs with component > 0 become satisfied and drop out.
func derive(order []int, used []bool, unsat []UDV, spec *LoopSpec, preferLow bool) bool {
	if len(unsat) == 0 {
		// Fill the remaining dimensions in preference order, low-to-high.
		for _, k := range order {
			if !used[k] {
				spec.Perm = append(spec.Perm, k)
				spec.Dirs[k] = grid.LowToHigh
				used[k] = true
			}
		}
		return true
	}
	if len(spec.Perm) == len(order) {
		return false
	}
	dirs := []grid.LoopDir{grid.LowToHigh, grid.HighToLow}
	if !preferLow {
		dirs[0], dirs[1] = dirs[1], dirs[0]
	}
	for _, k := range order {
		if used[k] {
			continue
		}
		for _, dir := range dirs {
			rest, ok := filter(unsat, k, dir)
			if !ok {
				continue
			}
			spec.Perm = append(spec.Perm, k)
			spec.Dirs[k] = dir
			used[k] = true
			if derive(order, used, rest, spec, preferLow) {
				return true
			}
			used[k] = false
			spec.Perm = spec.Perm[:len(spec.Perm)-1]
		}
	}
	return false
}

// filter returns the UDVs still unsatisfied after placing dimension k with
// direction dir, or ok=false if some UDV becomes lexicographically negative.
func filter(unsat []UDV, k int, dir grid.LoopDir) ([]UDV, bool) {
	var rest []UDV
	for _, u := range unsat {
		c := u.Dist[k]
		if dir == grid.HighToLow {
			c = -c
		}
		switch {
		case c < 0:
			return nil, false
		case c == 0:
			rest = append(rest, u)
		}
		// c > 0: satisfied, drop.
	}
	return rest, true
}

// conflictsEverywhere reports whether u, for every dimension and direction
// that would satisfy it, is contradicted by some other UDV in that same
// dimension. It is a heuristic witness detector for error messages only.
func conflictsEverywhere(u UDV, all []UDV) bool {
	for k, c := range u.Dist {
		if c == 0 {
			continue
		}
		clash := false
		for _, v := range all {
			if v.Dist[k]*c < 0 {
				clash = true
				break
			}
		}
		if !clash {
			return false
		}
	}
	return true
}
