package dep

import (
	"errors"
	"strings"
	"testing"

	"wavefront/internal/grid"
)

func sudv(dist ...int) UDV {
	return UDV{Kind: True, Dist: grid.Direction(dist)}
}

func lowLoop(rank int) LoopSpec { return Identity(rank) }

// TestSkewDecisionTable pins DeriveSkew's legality decisions: which UDV
// sets admit a positive skew of the inner loop pair, which coefficients the
// search picks, and which sets must be rejected with the witness surfaced.
func TestSkewDecisionTable(t *testing.T) {
	cases := []struct {
		name   string
		rank   int
		udvs   []UDV
		loop   LoopSpec
		wantCa int
		wantCb int
		refuse bool
	}{
		// Sweep3D restricted to rank 2: axis-unit distances in both
		// dimensions; the unit diagonal carries both.
		{"axis units", 2, []UDV{sudv(1, 0), sudv(0, 1)}, lowLoop(2), 1, 1, false},
		// Smith-Waterman: axis units plus the diagonal.
		{"sw", 2, []UDV{sudv(0, 1), sudv(1, 0), sudv(1, 1)}, lowLoop(2), 1, 1, false},
		// An anti-diagonal distance forces an asymmetric skew: (1,1) gives
		// wave distance 1-1 = 0, so the search must move on to (2,1).
		{"anti-diagonal", 2, []UDV{sudv(1, 0), sudv(0, 1), sudv(1, -1)}, lowLoop(2), 2, 1, false},
		// The mirrored pair bounds every candidate: ca-cb and cb-ca cannot
		// both be positive, so no legal skew exists.
		{"no positive skew", 2, []UDV{sudv(1, -1), sudv(-1, 1)}, lowLoop(2), 0, 0, true},
		// A distance far steeper than the coefficient cap also refuses:
		// (1,-5) needs ca > 5*cb, outside the searched window.
		{"steeper than cap", 2, []UDV{sudv(0, 1), sudv(1, -5)}, lowLoop(2), 0, 0, true},
		// Rank 3 collapses to the inner pair: the outer-carried distance
		// (1,0,0) is ignored, leaving the rank-2 axis-unit table.
		{"rank3 collapse", 3, []UDV{sudv(1, 0, 0), sudv(0, 1, 0), sudv(0, 0, 1)}, lowLoop(3), 1, 1, false},
		// An outer-carried mixed distance stays outer-carried even when its
		// in-plane part alone would refuse every candidate.
		{"outer carries hostile plane", 3, []UDV{sudv(1, -1, 1), sudv(0, 1, 0), sudv(0, 0, 1)}, lowLoop(3), 1, 1, false},
		// Zero UDVs constrain nothing.
		{"zero ignored", 2, []UDV{sudv(0, 0), sudv(1, 1)}, lowLoop(2), 1, 1, false},
		// Direction normalization: under a HighToLow inner pair the raw
		// distances flip sign, so (-1,-1) is carried by the (1,1) skew.
		{"high-to-low normalized", 2, []UDV{sudv(-1, 0), sudv(0, -1), sudv(-1, -1)},
			LoopSpec{Perm: []int{0, 1}, Dirs: []grid.LoopDir{grid.HighToLow, grid.HighToLow}}, 1, 1, false},
		// ...and the same distances under LowToHigh refuse (they point
		// against the iteration order on both axes).
		{"high-to-low misread", 2, []UDV{sudv(-1, -1), sudv(1, 1)}, lowLoop(2), 0, 0, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sk, err := DeriveSkew(c.rank, c.udvs, c.loop)
			if c.refuse {
				if err == nil {
					t.Fatalf("DeriveSkew = %v, want refusal", sk)
				}
				var nse *NoSkewError
				if !errors.As(err, &nse) {
					t.Fatalf("error %v is not a NoSkewError", err)
				}
				if !strings.Contains(err.Error(), "no positive skew") {
					t.Errorf("error %q does not surface the reason", err)
				}
				if nse.Witness.Dist == nil {
					t.Errorf("refusal carries no witness UDV")
				}
				return
			}
			if err != nil {
				t.Fatalf("DeriveSkew: %v", err)
			}
			if sk.Ca != c.wantCa || sk.Cb != c.wantCb {
				t.Fatalf("DeriveSkew = (%d,%d), want (%d,%d)", sk.Ca, sk.Cb, c.wantCa, c.wantCb)
			}
			if sk.A != c.loop.Perm[c.rank-2] || sk.B != c.loop.Perm[c.rank-1] {
				t.Errorf("skew plane (%d,%d), want inner pair (%d,%d)",
					sk.A, sk.B, c.loop.Perm[c.rank-2], c.loop.Perm[c.rank-1])
			}
			// The returned skew must actually carry every in-plane UDV.
			for _, u := range c.udvs {
				da, db, inPlane := 0, 0, true
				for d, x := range u.Dist {
					v := int(x)
					if c.loop.Dirs[d] == grid.HighToLow {
						v = -v
					}
					switch d {
					case sk.A:
						da = v
					case sk.B:
						db = v
					default:
						if v != 0 {
							inPlane = false
						}
					}
				}
				if u.Dist.Zero() || !inPlane {
					continue
				}
				if sk.Ca*da+sk.Cb*db <= 0 {
					t.Errorf("skew (%d,%d) does not carry in-plane UDV %v", sk.Ca, sk.Cb, u.Dist)
				}
			}
		})
	}
}

// TestSkewRejectsDegenerate covers the argument-validation errors.
func TestSkewRejectsDegenerate(t *testing.T) {
	if _, err := DeriveSkew(1, []UDV{sudv(1)}, Identity(1)); err == nil {
		t.Error("rank 1 must refuse")
	}
	if _, err := DeriveSkew(2, []UDV{sudv(1, 0)}, LoopSpec{Perm: []int{0}, Dirs: []grid.LoopDir{grid.LowToHigh}}); err == nil {
		t.Error("mismatched Perm length must refuse")
	}
}
