package dep

import (
	"fmt"

	"wavefront/internal/grid"
)

// Skew is a legal hyperplane (wavefront) schedule for the two innermost
// levels of a derived loop nest. With A = Perm[rank-2] and B = Perm[rank-1],
// and iteration coordinates ia, ib counted from each dimension's direction
// start (so a HighToLow loop counts down in array terms but up in iteration
// terms), the skewed execution order is
//
//	for wave w = 0, 1, 2, ...:  execute every point with Ca*ia + Cb*ib == w
//
// All points on one wave are mutually independent, so each wave may run as
// an unconstrained vector pass; successive waves run in order. Legality is
// the hyperplane condition of the classic skewing transformation: every
// dependence distance (da, db) that both outer loops leave uncarried must
// have strictly positive dot product Ca*da + Cb*db, so its source lies on a
// strictly earlier wave.
type Skew struct {
	// A and B are the dimensions of the two innermost loop levels (A the
	// outer of the pair), copied from the LoopSpec the skew was derived for.
	A, B int
	// Ca and Cb are the hyperplane coefficients: positive, coprime, and as
	// small as the dependences allow ((1,1) for all the paper's workloads).
	Ca, Cb int
}

func (s Skew) String() string {
	return fmt.Sprintf("wave = %d*i%d + %d*i%d", s.Ca, s.A, s.Cb, s.B)
}

// NoSkewError reports that no positive skew of the two innermost loop levels
// satisfies the block's dependences, carrying an in-plane witness UDV that
// every candidate hyperplane failed to carry. The caller falls back to the
// scalar tape, which follows the derived loop order point by point.
type NoSkewError struct {
	Witness UDV
}

func (e *NoSkewError) Error() string {
	return fmt.Sprintf("dep: no positive skew of the inner loop pair carries %s", e.Witness)
}

// maxSkewCoeff bounds the hyperplane coefficient search. Real dependence
// distances are tiny (the paper's stencils are all distance 1), so any skew
// a workload needs is found well inside this bound; a UDV set that needs
// more is as good as over-constrained for vectorization purposes.
const maxSkewCoeff = 4

// DeriveSkew finds the smallest legal hyperplane for the two innermost
// levels of loop, which must itself satisfy udvs (it came from Derive). Only
// in-plane dependences constrain the skew: a UDV with a nonzero component
// along an outer level is carried by that outer loop and never connects two
// points of one (A, B) plane. Distances are direction-normalized exactly as
// LoopSpec.Satisfies normalizes them. It returns a *NoSkewError when no
// positive coefficient pair up to maxSkewCoeff works, with a witness UDV.
func DeriveSkew(rank int, udvs []UDV, loop LoopSpec) (Skew, error) {
	if rank < 2 || len(loop.Perm) != rank {
		return Skew{}, fmt.Errorf("dep: skew needs a rank-%d nest with two inner levels", rank)
	}
	a, b := loop.Perm[rank-2], loop.Perm[rank-1]
	// Collect the direction-normalized in-plane distances.
	type pair struct{ da, db int }
	var plane []pair
	var srcs []UDV
	for _, u := range udvs {
		if u.Zero() || len(u.Dist) != rank {
			continue
		}
		outer := false
		for d, c := range u.Dist {
			if d != a && d != b && c != 0 {
				outer = true
				break
			}
		}
		if outer {
			continue
		}
		da, db := u.Dist[a], u.Dist[b]
		if loop.Dirs[a] == grid.HighToLow {
			da = -da
		}
		if loop.Dirs[b] == grid.HighToLow {
			db = -db
		}
		plane = append(plane, pair{da, db})
		srcs = append(srcs, u)
	}
	// Smallest coefficients first: (1,1) before (1,2)/(2,1), and so on.
	best := -1
	for sum := 2; sum <= 2*maxSkewCoeff; sum++ {
		for ca := 1; ca < sum; ca++ {
			cb := sum - ca
			if ca > maxSkewCoeff || cb > maxSkewCoeff || gcd(ca, cb) != 1 {
				continue
			}
			ok := true
			for i, p := range plane {
				if ca*p.da+cb*p.db <= 0 {
					ok = false
					if best < 0 {
						best = i
					}
					break
				}
			}
			if ok {
				return Skew{A: a, B: b, Ca: ca, Cb: cb}, nil
			}
		}
	}
	w := UDV{}
	if best >= 0 {
		w = srcs[best]
	} else if len(srcs) > 0 {
		w = srcs[0]
	}
	return Skew{}, &NoSkewError{Witness: w}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
