// Package model implements the analytic performance models of §4: the
// computation and communication time of a pipelined wavefront execution
// under linear-cost communication (α + β·n per message of n elements), the
// optimal block size of Equation (1), and the β = 0 special case of
// Hiranandani et al. that the paper calls Model1.
//
// All times are normalized to the cost of computing a single element of the
// data space, as in the paper. The geometry is the paper's: an n × n data
// space block distributed across p processors in the wavefront dimension
// only, with tiles of width b along the other dimension.
package model

import (
	"fmt"
	"math"
)

// Model carries the communication cost parameters. Model1 of the paper is
// Beta == 0; Model2 is the general case.
type Model struct {
	Alpha float64 // per-message startup cost
	Beta  float64 // per-element transmission cost
}

// Model1 returns the constant-communication-cost model of Hiranandani et
// al.: β is ignored (set to zero).
func Model1(alpha float64) Model { return Model{Alpha: alpha} }

// Model2 returns the general linear-cost model.
func Model2(alpha, beta float64) Model { return Model{Alpha: alpha, Beta: beta} }

func (m Model) String() string {
	return fmt.Sprintf("model(α=%g, β=%g)", m.Alpha, m.Beta)
}

// TComp is T_comp^pipe = (nb/p)(p−1) + n²/p: the last processor may start
// after p−1 blocks of nb/p elements, and then computes its own n²/p
// elements.
func (m Model) TComp(n, p, b float64) float64 {
	return n*b/p*(p-1) + n*n/p
}

// TComm is T_comm^pipe = (α + βb)(n/b + p − 2): each of the messages on the
// critical path costs α + βb; p−1 messages precede the last processor's
// first datum and it then receives another n/b − 1.
func (m Model) TComm(n, p, b float64) float64 {
	return (m.Alpha + m.Beta*b) * (n/b + p - 2)
}

// TPipe is the modeled total time of the pipelined execution.
func (m Model) TPipe(n, p, b float64) float64 {
	return m.TComp(n, p, b) + m.TComm(n, p, b)
}

// TNonPipe models the non-pipelined (naive) execution of §3.2: the
// computation is fully serialized along the wavefront (n² element times)
// and each processor boundary adds one n-element message.
func (m Model) TNonPipe(n, p float64) float64 {
	return n*n + (p-1)*(m.Alpha+m.Beta*n)
}

// TSerial is the uniprocessor time, n².
func (m Model) TSerial(n float64) float64 { return n * n }

// Speedup is the modeled speedup of the pipelined execution over the
// non-pipelined execution, the quantity plotted in Figures 5 and 7.
func (m Model) Speedup(n, p, b float64) float64 {
	return m.TNonPipe(n, p) / m.TPipe(n, p, b)
}

// OptimalBlock is Equation (1): b = sqrt(αnp / ((pβ + n)(p − 1))).
func (m Model) OptimalBlock(n, p float64) float64 {
	if p <= 1 {
		return n
	}
	return math.Sqrt(m.Alpha * n * p / ((p*m.Beta + n) * (p - 1)))
}

// OptimalBlockApprox is the paper's approximation sqrt(αn/(pβ + n)); with
// β = 0 it reduces to Hiranandani's b = sqrt(α).
func (m Model) OptimalBlockApprox(n, p float64) float64 {
	return math.Sqrt(m.Alpha * n / (p*m.Beta + n))
}

// OptimalBlockExact solves the true stationarity condition of TPipe,
// −αn/b² + β(p−2) + n(p−1)/p = 0, without the paper's (p−2) ≈ (p−1)
// simplification.
func (m Model) OptimalBlockExact(n, p float64) float64 {
	denom := m.Beta*(p-2) + n*(p-1)/p
	if denom <= 0 {
		return n
	}
	return math.Sqrt(m.Alpha * n / denom)
}

// OptimalBlockNumeric scans integer block sizes 1..maxB and returns the
// minimizer of TPipe, an oracle for validating the closed forms.
func (m Model) OptimalBlockNumeric(n, p float64, maxB int) int {
	best, bestT := 1, math.Inf(1)
	for b := 1; b <= maxB; b++ {
		t := m.TPipe(n, p, float64(b))
		if t < bestT {
			best, bestT = b, t
		}
	}
	return best
}

// Point is one sample of a modeled or measured curve.
type Point struct {
	B       int
	Time    float64
	Speedup float64
}

// SpeedupCurve samples the modeled speedup at each block size.
func (m Model) SpeedupCurve(n, p float64, bs []int) []Point {
	out := make([]Point, len(bs))
	for i, b := range bs {
		out[i] = Point{
			B:       b,
			Time:    m.TPipe(n, p, float64(b)),
			Speedup: m.Speedup(n, p, float64(b)),
		}
	}
	return out
}

// FitAlphaBeta recovers α and β from two message-cost measurements by
// solving the 2×2 linear system cost = α + β·size. It is the calibration
// step of dynamic block-size selection. The two sizes must differ.
func FitAlphaBeta(size1 int, cost1 float64, size2 int, cost2 float64) (alpha, beta float64, err error) {
	if size1 == size2 {
		return 0, 0, fmt.Errorf("model: cannot fit α,β from equal message sizes %d", size1)
	}
	beta = (cost2 - cost1) / float64(size2-size1)
	alpha = cost1 - beta*float64(size1)
	return alpha, beta, nil
}
