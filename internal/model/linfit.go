package model

// LinearFit is a streaming least-squares fit of y = α + β·x, the online
// form of FitAlphaBeta: instead of two chosen probe sizes it folds every
// observed (message size, cost) pair into five running sums, so the
// runtime's drift monitor can re-estimate the machine's communication
// parameters continuously while a job runs. The zero value is an empty fit.
type LinearFit struct {
	N     float64 `json:"n"`
	SumX  float64 `json:"sum_x"`
	SumY  float64 `json:"sum_y"`
	SumXX float64 `json:"sum_xx"`
	SumXY float64 `json:"sum_xy"`
}

// Add folds one observation into the fit.
func (f *LinearFit) Add(x, y float64) {
	f.N++
	f.SumX += x
	f.SumY += y
	f.SumXX += x * x
	f.SumXY += x * y
}

// Merge folds another fit's observations into this one (used to combine
// per-rank shards).
func (f *LinearFit) Merge(g LinearFit) {
	f.N += g.N
	f.SumX += g.SumX
	f.SumY += g.SumY
	f.SumXX += g.SumXX
	f.SumXY += g.SumXY
}

// MeanY returns the mean observed cost (0 for an empty fit).
func (f LinearFit) MeanY() float64 {
	if f.N == 0 {
		return 0
	}
	return f.SumY / f.N
}

// AlphaBeta solves the least-squares system for (α, β). When the fit is
// degenerate — fewer than two observations, or no variance in x — it
// returns the mean cost as α with β = 0 and ok = false. Negative estimates
// (timing noise) are clamped to zero, matching Probe.
func (f LinearFit) AlphaBeta() (alpha, beta float64, ok bool) {
	det := f.N*f.SumXX - f.SumX*f.SumX
	if f.N < 2 || det <= 0 {
		return f.MeanY(), 0, false
	}
	beta = (f.N*f.SumXY - f.SumX*f.SumY) / det
	alpha = (f.SumY - beta*f.SumX) / f.N
	if alpha < 0 {
		alpha = 0
	}
	if beta < 0 {
		beta = 0
	}
	return alpha, beta, true
}
