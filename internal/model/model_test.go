package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestModel1ReducesToHiranandani(t *testing.T) {
	// With β = 0 the approximate optimum is b = sqrt(α).
	m := Model1(1521)
	if got := m.OptimalBlockApprox(1024, 8); math.Abs(got-39) > 1e-9 {
		t.Errorf("Model1 approx optimum = %g, want 39", got)
	}
}

// TestFigure5aOptima checks the calibrated T3E-like setting: Model1 picks
// b = 39 while Model2 picks b ≈ 23, the gap reported in Figure 5(a).
func TestFigure5aOptima(t *testing.T) {
	alpha, beta := 1500.0, 72.0
	n, p := 256.0, 8.0
	m1 := Model1(alpha)
	m2 := Model2(alpha, beta)
	b1 := math.Round(m1.OptimalBlockApprox(n, p))
	b2 := math.Round(m2.OptimalBlock(n, p))
	if b1 != 39 {
		t.Errorf("Model1 b = %g, want 39", b1)
	}
	if b2 != 23 {
		t.Errorf("Model2 b = %g, want 23", b2)
	}
}

// TestFigure5bOptima checks the hypothetical worst case of Figure 5(b):
// Model1 suggests b = 20 while Model2 knows b = 3 is right.
func TestFigure5bOptima(t *testing.T) {
	alpha, beta := 400.0, 186.0
	n, p := 64.0, 16.0
	b1 := math.Round(Model1(alpha).OptimalBlockApprox(n, p))
	b2 := math.Round(Model2(alpha, beta).OptimalBlock(n, p))
	if b1 != 20 {
		t.Errorf("Model1 b = %g, want 20", b1)
	}
	if b2 != 3 {
		t.Errorf("Model2 b = %g, want 3", b2)
	}
}

func TestTCompTComm(t *testing.T) {
	m := Model2(10, 2)
	n, p, b := 100.0, 4.0, 10.0
	wantComp := 100.0*10/4*3 + 100*100/4
	if got := m.TComp(n, p, b); got != wantComp {
		t.Errorf("TComp = %g, want %g", got, wantComp)
	}
	wantComm := (10 + 2*10) * (100.0/10 + 4 - 2)
	if got := m.TComm(n, p, b); got != wantComm {
		t.Errorf("TComm = %g, want %g", got, wantComm)
	}
	if got := m.TPipe(n, p, b); got != wantComp+wantComm {
		t.Errorf("TPipe = %g", got)
	}
}

func TestNonPipeAndSerial(t *testing.T) {
	m := Model2(10, 2)
	if got := m.TSerial(100); got != 10000 {
		t.Errorf("TSerial = %g", got)
	}
	want := 10000 + 3*(10+200)
	if got := m.TNonPipe(100, 4); got != float64(want) {
		t.Errorf("TNonPipe = %g, want %d", got, want)
	}
}

// TestEquationOneTrends verifies the qualitative claims made after
// Equation (1): optimal b grows with α, shrinks with β, shrinks with p.
func TestEquationOneTrends(t *testing.T) {
	n, p := 512.0, 8.0
	base := Model2(500, 20).OptimalBlock(n, p)
	if Model2(2000, 20).OptimalBlock(n, p) <= base {
		t.Error("optimal b must grow with α")
	}
	if Model2(500, 200).OptimalBlock(n, p) >= base {
		t.Error("optimal b must shrink with β")
	}
	if Model2(500, 20).OptimalBlock(n, 32) >= base {
		t.Error("optimal b must shrink with p")
	}
	// As n grows, sensitivity to p fades: the ratio of optima at p=4 and
	// p=32 approaches 1.
	small := Model2(500, 20)
	rSmall := small.OptimalBlock(128, 4) / small.OptimalBlock(128, 32)
	rBig := small.OptimalBlock(1<<20, 4) / small.OptimalBlock(1<<20, 32)
	if !(rBig < rSmall) {
		t.Errorf("sensitivity must fall with n: ratios %g vs %g", rSmall, rBig)
	}
}

// TestClosedFormNearNumericOptimum: the exact stationarity solution must
// essentially match the exhaustive integer optimum, and the paper's
// Equation (1) — which approximates (p−2) by (p−1) — must stay within a
// modest factor of it (the approximation is visibly loose at p = 2 with a
// dominant β, which is worth documenting rather than hiding). A
// continuous optimum is scored as the better of its two neighbouring
// integers — the way any consumer would round it — because
// nearest-integer rounding near small b (e.g. 1.496 rounding to 1 when
// the optimum is 2) costs a few percent that says nothing about the
// formulas themselves.
func TestClosedFormNearNumericOptimum(t *testing.T) {
	f := func(aRaw, bRaw, nRaw, pRaw uint16) bool {
		alpha := float64(aRaw%5000) + 1
		beta := float64(bRaw % 300)
		n := float64(nRaw%1000) + 32
		p := float64(pRaw%30) + 2
		m := Model2(alpha, beta)
		clamp := func(b float64) float64 {
			b = math.Max(1, b)
			return math.Min(b, n)
		}
		tAt := func(b float64) float64 {
			lo, hi := clamp(math.Floor(b)), clamp(math.Ceil(b))
			return math.Min(m.TPipe(n, p, lo), m.TPipe(n, p, hi))
		}
		bNum := m.OptimalBlockNumeric(n, p, int(n))
		tNum := m.TPipe(n, p, float64(bNum))
		if tExact := tAt(m.OptimalBlockExact(n, p)); tExact > 1.001*tNum {
			return false
		}
		// At p = 2 the (p−2) fill term Equation (1) approximates away is
		// exactly zero, so the true optimum is b = n and the paper formula
		// overpays by up to ~18% when β dominates; elsewhere 15% holds.
		tol := 1.15
		if p == 2 {
			tol = 1.25
		}
		return tAt(m.OptimalBlock(n, p)) <= tol*tNum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOptimalBlockEdge(t *testing.T) {
	m := Model2(100, 1)
	if got := m.OptimalBlock(64, 1); got != 64 {
		t.Errorf("p=1 optimum should be the full width, got %g", got)
	}
}

func TestSpeedupCurveShape(t *testing.T) {
	// Speedup must rise then fall around the optimum.
	m := Model2(1500, 72)
	n, p := 256.0, 8.0
	bs := []int{1, 23, 256}
	pts := m.SpeedupCurve(n, p, bs)
	if !(pts[1].Speedup > pts[0].Speedup && pts[1].Speedup > pts[2].Speedup) {
		t.Errorf("speedup curve not unimodal around optimum: %+v", pts)
	}
	if pts[1].B != 23 {
		t.Errorf("point carries wrong b: %+v", pts[1])
	}
}

func TestFitAlphaBeta(t *testing.T) {
	alpha, beta := 120.0, 3.5
	cost := func(n int) float64 { return alpha + beta*float64(n) }
	a, b, err := FitAlphaBeta(8, cost(8), 512, cost(512))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-alpha) > 1e-9 || math.Abs(b-beta) > 1e-9 {
		t.Errorf("fit = (%g,%g), want (%g,%g)", a, b, alpha, beta)
	}
	if _, _, err := FitAlphaBeta(8, 1, 8, 2); err == nil {
		t.Error("equal sizes must fail")
	}
}

func TestModelString(t *testing.T) {
	if got := Model2(1, 2).String(); got != "model(α=1, β=2)" {
		t.Errorf("String() = %q", got)
	}
}
