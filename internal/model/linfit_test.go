package model

import (
	"math"
	"testing"
)

func TestLinearFitRecoversExactLine(t *testing.T) {
	var f LinearFit
	for _, x := range []float64{1, 10, 100, 1000} {
		f.Add(x, 500+2.5*x)
	}
	alpha, beta, ok := f.AlphaBeta()
	if !ok {
		t.Fatal("fit reported degenerate")
	}
	if math.Abs(alpha-500) > 1e-9 || math.Abs(beta-2.5) > 1e-12 {
		t.Errorf("alpha, beta = %g, %g; want 500, 2.5", alpha, beta)
	}
}

func TestLinearFitLeastSquaresOverNoisyPoints(t *testing.T) {
	// Symmetric noise around y = 10 + 3x cancels exactly in least squares.
	var f LinearFit
	for _, p := range [][2]float64{{0, 9}, {0, 11}, {2, 15}, {2, 17}, {4, 21}, {4, 23}} {
		f.Add(p[0], p[1])
	}
	alpha, beta, ok := f.AlphaBeta()
	if !ok {
		t.Fatal("fit reported degenerate")
	}
	if math.Abs(alpha-10) > 1e-9 || math.Abs(beta-3) > 1e-9 {
		t.Errorf("alpha, beta = %g, %g; want 10, 3", alpha, beta)
	}
}

func TestLinearFitDegenerateFallsBackToMean(t *testing.T) {
	var empty LinearFit
	if a, b, ok := empty.AlphaBeta(); ok || a != 0 || b != 0 {
		t.Errorf("empty fit gave %g, %g, %v", a, b, ok)
	}
	var one LinearFit
	one.Add(5, 42)
	if a, b, ok := one.AlphaBeta(); ok || a != 42 || b != 0 {
		t.Errorf("single point gave %g, %g, %v; want mean 42", a, b, ok)
	}
	var same LinearFit
	same.Add(7, 10)
	same.Add(7, 20)
	if a, b, ok := same.AlphaBeta(); ok || a != 15 || b != 0 {
		t.Errorf("no-variance fit gave %g, %g, %v; want mean 15", a, b, ok)
	}
}

func TestLinearFitClampsNegativeEstimates(t *testing.T) {
	// A steeply decreasing cost would solve to β < 0; the clamp matches
	// Probe's treatment of timing noise.
	var f LinearFit
	f.Add(1, 100)
	f.Add(10, 10)
	_, beta, ok := f.AlphaBeta()
	if !ok || beta != 0 {
		t.Errorf("beta = %g, ok = %v; want clamped 0, true", beta, ok)
	}
}

func TestLinearFitMergeEqualsSequential(t *testing.T) {
	var whole, a, b LinearFit
	pts := [][2]float64{{1, 3}, {2, 5}, {3, 7}, {4, 9}}
	for i, p := range pts {
		whole.Add(p[0], p[1])
		if i%2 == 0 {
			a.Add(p[0], p[1])
		} else {
			b.Add(p[0], p[1])
		}
	}
	a.Merge(b)
	if a != whole {
		t.Errorf("merged fit %+v != sequential fit %+v", a, whole)
	}
	if a.MeanY() != 6 {
		t.Errorf("mean y = %g, want 6", a.MeanY())
	}
}
