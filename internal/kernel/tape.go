// Package kernel lowers compiled statement right-hand sides into flat
// instruction tapes executed over whole inner-loop spans at a time — the
// fused, unit-stride loop bodies the paper credits for the serial speedups
// of Figure 6 — instead of dispatching a tree of per-point closures.
//
// A Program is the lowered form of one block: a shared table of the fields
// the statements touch, plus one tape per statement. Each tape instruction
// reads spans (load at a constant flat offset from the current loop
// position), broadcast constants, or combines scratch registers with
// arithmetic and intrinsics; the final register stores back to the
// statement's destination field. Registers are full inner-loop spans leased
// from a bufpool (or plainly allocated when no pool is attached) and
// retained across runs, so the steady state allocates nothing.
//
// Span legality comes from the block's unconstrained distance vectors: a
// dimension v is span-executable iff every non-zero UDV either has a zero
// component along v or a non-zero component along some other dimension (in
// which case an outer loop carries it and no dependence connects two points
// of one span). A UDV non-zero only along v — a primed reference whose
// shift lies in the inner dimension — forces the scalar tape: the same
// instructions executed point at a time in exactly the derived loop order,
// still free of per-point closure calls and grid.Point allocations.
package kernel

import (
	"fmt"

	"wavefront/internal/bufpool"
	"wavefront/internal/dep"
	"wavefront/internal/expr"
	"wavefront/internal/field"
	"wavefront/internal/grid"
)

// op enumerates the tape ISA. Arithmetic comes in register-register and
// register-immediate forms; the non-commutative ops carry both immediate
// sides. There is deliberately no fused multiply-add: an fma computes with
// a single rounding where the closure path rounds twice, so including it
// would break the bit-identity contract between the engines.
type op uint8

const (
	opLoad    op = iota // dst[e] = field[base+off+e*step]
	opConst             // dst[e] = imm
	opAdd               // dst = a + b
	opSub               // dst = a - b
	opMul               // dst = a * b
	opDiv               // dst = a / b
	opAddImm            // dst = a + imm
	opSubImmR           // dst = a - imm
	opSubImmL           // dst = imm - a
	opMulImm            // dst = a * imm
	opDivImmR           // dst = a / imm
	opDivImmL           // dst = imm / a
	opNeg               // dst = -a
	opSqrt
	opAbs
	opExp
	opLog
	opMin
	opMax
	opPow
	opMinImm
	opMaxImm
	opPowImmR // dst = pow(a, imm)
	opPowImmL // dst = pow(imm, a)
	opStore   // field[base+e*step] = a; fld is the destination field
)

// instr is one tape instruction. dst/a/b index scratch registers; fld
// indexes the program's field table; off is the constant flat-offset delta
// of a shifted load (sum of shift[d]*stride[d] over the field's dims).
type instr struct {
	op   op
	dst  uint16
	a, b uint16
	fld  uint16
	off  int
	imm  float64
}

// stmtTape is one statement's lowered form: run the instructions, then
// store register out to the destination field (unshifted LHS).
type stmtTape struct {
	ins []instr
	out uint16
	dst uint16 // destination's field-table index
}

// Program is a block lowered against concrete fields. It is not safe for
// concurrent use; the pipelined runtime builds one per rank.
type Program struct {
	rank    int
	fields  []*field.Field
	data    [][]float64
	strides [][]int // per field, per dimension
	lows    [][]int
	stmts   []stmtTape // per-statement tapes: the scalar (per-point) path
	nregs   int        // register count of the widest statement tape
	spanOK  []bool     // per dimension, from the block's UDVs
	udvs    []dep.UDV  // retained for skew derivation

	// fused is every statement in one vector pass — loads deduped across
	// statements, stores inline via opStore, in statement order — executed
	// per span or per skewed diagonal run. fusedRegs is its register count.
	fused     []instr
	fusedRegs int

	// skc caches the hyperplane derivation for the one loop spec a kernel
	// runs with (nil until the first non-spannable Run).
	skc *skewCache

	// Scratch state. regs are leased spans retained across runs; base is
	// the per-field flat offset of the current outer-loop position; saved
	// holds one base snapshot per loop level for the odometer recursion.
	// rbase/steps are the per-field flat start and per-element flat step of
	// the current run (a span or a skewed diagonal); stepA/stepB are the
	// skewed executor's per-field iteration steps along the inner loop pair.
	pool   *bufpool.Pool
	prank  int
	regs   [][]float64
	regCap int
	base   []int
	saved  [][]int
	rbase  []int
	steps  []int
	stepA  []int
	stepB  []int
}

// Path identifies which executor a Run actually used.
type Path int8

const (
	// PathScalar is the per-point tape in the derived loop order.
	PathScalar Path = iota
	// PathSpan is the vector tape over whole spans of the innermost
	// (span-legal) dimension.
	PathSpan
	// PathSkewed is the vector tape over hyperplane (skewed diagonal) runs
	// of the two innermost loop levels.
	PathSkewed
)

func (p Path) String() string {
	switch p {
	case PathScalar:
		return "scalar"
	case PathSpan:
		return "span"
	case PathSkewed:
		return "skewed"
	}
	return fmt.Sprintf("Path(%d)", int8(p))
}

// Lower builds the program for a block's statements: dsts[i] is the
// (unshifted) destination field of statement i and rhs[i] its expression.
// udvs are the block's dependence distance vectors, which determine span
// legality per dimension. Scalars are captured from env at lower time,
// exactly as expr.Compile captures them. An error means the block is not
// tape-executable (e.g. a referenced field's rank differs from the region's)
// and the caller should fall back to the closure engine.
func Lower(rank int, dsts []*field.Field, rhs []expr.Node, env expr.Env, udvs []dep.UDV) (*Program, error) {
	if rank < 1 {
		return nil, fmt.Errorf("kernel: rank must be >= 1, got %d", rank)
	}
	if len(dsts) != len(rhs) {
		return nil, fmt.Errorf("kernel: %d destinations for %d statements", len(dsts), len(rhs))
	}
	pr := &Program{rank: rank}
	for i := range rhs {
		di, err := pr.fieldIndex(dsts[i])
		if err != nil {
			return nil, err
		}
		lw := &lowerer{pr: pr, env: env}
		v, err := lw.lower(rhs[i])
		if err != nil {
			return nil, err
		}
		out := lw.materialize(v)
		pr.stmts = append(pr.stmts, stmtTape{ins: lw.ins, out: out, dst: di})
		if lw.high > pr.nregs {
			pr.nregs = lw.high
		}
	}
	pr.spanOK = spanMask(rank, udvs)
	pr.udvs = udvs
	if err := pr.buildFused(); err != nil {
		return nil, err
	}
	nf := len(pr.fields)
	pr.base = make([]int, nf)
	pr.rbase = make([]int, nf)
	pr.steps = make([]int, nf)
	pr.stepA = make([]int, nf)
	pr.stepB = make([]int, nf)
	pr.saved = make([][]int, rank)
	for i := range pr.saved {
		pr.saved[i] = make([]int, nf)
	}
	return pr, nil
}

// readsA reports whether o reads register operand a (opStore reads a as its
// value to store); readsB likewise for b.
func readsA(o op) bool { return o != opLoad && o != opConst }

func readsB(o op) bool {
	switch o {
	case opAdd, opSub, opMul, opDiv, opMin, opMax, opPow:
		return true
	}
	return false
}

// buildFused concatenates the statement tapes into the single vector pass
// the span and skewed executors run: statements stay in order (each one's
// opStore precedes the next statement's instructions, exactly the order
// execSpans used to produce), but a load of a field at an offset already
// loaded reuses the earlier register, and a store forwards its register to
// subsequent loads of the stored field at offset zero while invalidating
// that field's other cached loads. The reused register holds exactly the
// values a fresh load would read, so the fused pass is bit-identical to the
// per-statement passes. Registers are renamed to SSA form first, then
// compacted through a last-use scan back to a stack-discipline footprint.
func (pr *Program) buildFused() error {
	type key struct {
		fld uint16
		off int
	}
	cache := map[key]uint16{}
	remap := make([]uint16, pr.nregs)
	var ssa []instr
	next := 0
	for _, st := range pr.stmts {
		for _, in := range st.ins {
			if in.op == opLoad {
				k := key{in.fld, in.off}
				if r, ok := cache[k]; ok {
					remap[in.dst] = r
					continue
				}
			}
			ni := in
			if readsA(in.op) {
				ni.a = remap[in.a]
			}
			if readsB(in.op) {
				ni.b = remap[in.b]
			}
			if next > 0xffff {
				return fmt.Errorf("kernel: fused tape needs too many registers")
			}
			ni.dst = uint16(next)
			next++
			remap[in.dst] = ni.dst
			ssa = append(ssa, ni)
			if in.op == opLoad {
				cache[key{in.fld, in.off}] = ni.dst
			}
		}
		out := remap[st.out]
		ssa = append(ssa, instr{op: opStore, a: out, fld: st.dst})
		for k := range cache {
			if k.fld == st.dst {
				delete(cache, k)
			}
		}
		cache[key{fld: st.dst}] = out
	}
	pr.fused, pr.fusedRegs = compactRegs(ssa, next)
	return nil
}

// compactRegs renumbers an SSA-form tape (every dst written exactly once)
// onto a small physical register set: a last-use scan frees each register at
// its final read, and a LIFO free list hands the hottest register back
// first, so the fused pass keeps roughly the per-statement stack-discipline
// working set and its spans stay cache-resident.
func compactRegs(ssa []instr, nssa int) ([]instr, int) {
	last := make([]int, nssa)
	for i := range last {
		last[i] = -1
	}
	for i := range ssa {
		in := &ssa[i]
		if readsA(in.op) {
			last[in.a] = i
		}
		if readsB(in.op) {
			last[in.b] = i
		}
	}
	phys := make([]uint16, nssa)
	var free []uint16
	high := 0
	out := make([]instr, len(ssa))
	for i, in := range ssa {
		sa, sb := in.a, in.b
		ra, rb := readsA(in.op), readsB(in.op)
		if ra {
			in.a = phys[sa]
		}
		if rb {
			in.b = phys[sb]
		}
		// Free operands whose final read is this instruction before
		// allocating dst: the result may then reuse an operand's register,
		// which is safe because every op reads its inputs before writing.
		if ra && last[sa] == i {
			free = append(free, phys[sa])
		}
		if rb && last[sb] == i && sb != sa {
			free = append(free, phys[sb])
		}
		if in.op != opStore {
			var p uint16
			if n := len(free); n > 0 {
				p, free = free[n-1], free[:n-1]
			} else {
				p = uint16(high)
				high++
			}
			phys[in.dst] = p
			in.dst = p
		}
		out[i] = in
	}
	return out, high
}

// SpanMask reports, per dimension, whether the dimension may legally run as
// whole spans: every non-zero UDV must either not move along it or also
// move along another dimension (so an outer loop carries the dependence).
func SpanMask(rank int, udvs []dep.UDV) []bool { return spanMask(rank, udvs) }

func spanMask(rank int, udvs []dep.UDV) []bool {
	ok := make([]bool, rank)
	for v := range ok {
		ok[v] = true
		for _, u := range udvs {
			if len(u.Dist) != rank || u.Dist[v] == 0 {
				continue
			}
			solo := true
			for d, c := range u.Dist {
				if d != v && c != 0 {
					solo = false
					break
				}
			}
			if solo {
				ok[v] = false
				break
			}
		}
	}
	return ok
}

// SpanOK reports whether dimension v may run as whole spans.
func (pr *Program) SpanOK(v int) bool { return pr.spanOK[v] }

// Registers returns the scratch register count the program leases — the
// wider of the scalar path's per-statement file and the fused pass's file
// (for tests and sizing).
func (pr *Program) Registers() int {
	if pr.fusedRegs > pr.nregs {
		return pr.fusedRegs
	}
	return pr.nregs
}

// FusedLoads returns the number of load instructions in the fused pass
// (for tests asserting cross-statement operand dedup).
func (pr *Program) FusedLoads() int {
	n := 0
	for _, in := range pr.fused {
		if in.op == opLoad {
			n++
		}
	}
	return n
}

// fieldIndex interns f into the program's field table.
func (pr *Program) fieldIndex(f *field.Field) (uint16, error) {
	if f == nil {
		return 0, fmt.Errorf("kernel: nil field")
	}
	if f.Rank() != pr.rank {
		return 0, fmt.Errorf("kernel: field %q has rank %d, region has rank %d", f.Name(), f.Rank(), pr.rank)
	}
	for i, g := range pr.fields {
		if g == f {
			return uint16(i), nil
		}
	}
	if len(pr.fields) > 0xffff {
		return 0, fmt.Errorf("kernel: too many fields")
	}
	strides := make([]int, pr.rank)
	lows := make([]int, pr.rank)
	for d := 0; d < pr.rank; d++ {
		strides[d] = f.Stride(d)
		lows[d] = f.Bounds().Dim(d).Lo
	}
	pr.fields = append(pr.fields, f)
	pr.data = append(pr.data, f.Data())
	pr.strides = append(pr.strides, strides)
	pr.lows = append(pr.lows, lows)
	return uint16(len(pr.fields) - 1), nil
}

// val is a lowering-time value: a scratch register or a compile-time
// constant (literal or captured scalar). Constants fold through arithmetic
// with the same float64 operations the closure engine performs per point,
// so folding once at lower time is bit-identical.
type val struct {
	reg   int // -1 for a constant
	imm   float64
	konst bool
}

// lowerer emits one statement's tape with stack-discipline register reuse:
// registers free in LIFO order, so a tree of depth d needs O(d) registers.
type lowerer struct {
	pr   *Program
	env  expr.Env
	ins  []instr
	next int
	high int
}

func (lw *lowerer) alloc() uint16 {
	r := lw.next
	lw.next++
	if lw.next > lw.high {
		lw.high = lw.next
	}
	if r > 0xffff {
		panic("kernel: register overflow")
	}
	return uint16(r)
}

func (lw *lowerer) free(v val) {
	if !v.konst {
		lw.next--
	}
}

func (lw *lowerer) emit(in instr) { lw.ins = append(lw.ins, in) }

// materialize forces v into a register (emitting a broadcast for constants).
func (lw *lowerer) materialize(v val) uint16 {
	if !v.konst {
		return uint16(v.reg)
	}
	dst := lw.alloc()
	lw.emit(instr{op: opConst, dst: dst, imm: v.imm})
	return dst
}

func (lw *lowerer) lower(n expr.Node) (val, error) {
	switch t := n.(type) {
	case expr.Const:
		return val{konst: true, imm: float64(t)}, nil
	case expr.Scalar:
		v, ok := lw.env.Scalar(string(t))
		if !ok {
			return val{}, fmt.Errorf("kernel: unbound scalar %q", string(t))
		}
		return val{konst: true, imm: v}, nil
	case expr.ArrayRef:
		f := lw.env.Array(t.Name)
		if f == nil {
			return val{}, fmt.Errorf("kernel: unbound array %q", t.Name)
		}
		fi, err := lw.pr.fieldIndex(f)
		if err != nil {
			return val{}, err
		}
		off := 0
		if t.Shift != nil {
			if len(t.Shift) != lw.pr.rank {
				return val{}, fmt.Errorf("kernel: reference %s has shift rank %d, want %d", t, len(t.Shift), lw.pr.rank)
			}
			for d, c := range t.Shift {
				off += c * lw.pr.strides[fi][d]
			}
		}
		dst := lw.alloc()
		lw.emit(instr{op: opLoad, dst: dst, fld: fi, off: off})
		return val{reg: int(dst)}, nil
	case expr.Unary:
		if t.Op != expr.Neg {
			return val{}, fmt.Errorf("kernel: bad unary op %v", t.Op)
		}
		x, err := lw.lower(t.X)
		if err != nil {
			return val{}, err
		}
		if x.konst {
			return val{konst: true, imm: -x.imm}, nil
		}
		lw.free(x)
		dst := lw.alloc()
		lw.emit(instr{op: opNeg, dst: dst, a: uint16(x.reg)})
		return val{reg: int(dst)}, nil
	case expr.Binary:
		return lw.lowerBinary(t)
	case expr.Call:
		return lw.lowerCall(t)
	}
	return val{}, fmt.Errorf("kernel: unknown node type %T", n)
}

func (lw *lowerer) lowerBinary(t expr.Binary) (val, error) {
	l, err := lw.lower(t.L)
	if err != nil {
		return val{}, err
	}
	r, err := lw.lower(t.R)
	if err != nil {
		return val{}, err
	}
	if l.konst && r.konst {
		switch t.Op {
		case expr.Add:
			return val{konst: true, imm: l.imm + r.imm}, nil
		case expr.Sub:
			return val{konst: true, imm: l.imm - r.imm}, nil
		case expr.Mul:
			return val{konst: true, imm: l.imm * r.imm}, nil
		case expr.Div:
			return val{konst: true, imm: l.imm / r.imm}, nil
		}
		return val{}, fmt.Errorf("kernel: bad binary op %v", t.Op)
	}
	// Free operands (LIFO), then allocate the result; the result may
	// therefore reuse an operand's register, which the executors allow
	// because every instruction reads its inputs before writing dst.
	lw.free(r)
	lw.free(l)
	dst := lw.alloc()
	switch {
	case !l.konst && !r.konst:
		var o op
		switch t.Op {
		case expr.Add:
			o = opAdd
		case expr.Sub:
			o = opSub
		case expr.Mul:
			o = opMul
		case expr.Div:
			o = opDiv
		default:
			return val{}, fmt.Errorf("kernel: bad binary op %v", t.Op)
		}
		lw.emit(instr{op: o, dst: dst, a: uint16(l.reg), b: uint16(r.reg)})
	case r.konst:
		var o op
		switch t.Op {
		case expr.Add:
			o = opAddImm
		case expr.Sub:
			o = opSubImmR
		case expr.Mul:
			o = opMulImm
		case expr.Div:
			o = opDivImmR
		default:
			return val{}, fmt.Errorf("kernel: bad binary op %v", t.Op)
		}
		lw.emit(instr{op: o, dst: dst, a: uint16(l.reg), imm: r.imm})
	default: // l.konst
		var o op
		switch t.Op {
		case expr.Add:
			o = opAddImm
		case expr.Sub:
			o = opSubImmL
		case expr.Mul:
			o = opMulImm
		case expr.Div:
			o = opDivImmL
		default:
			return val{}, fmt.Errorf("kernel: bad binary op %v", t.Op)
		}
		lw.emit(instr{op: o, dst: dst, a: uint16(r.reg), imm: l.imm})
	}
	return val{reg: int(dst)}, nil
}

func (lw *lowerer) lowerCall(t expr.Call) (val, error) {
	if want := t.Fn.Arity(); want < 0 {
		return val{}, fmt.Errorf("kernel: unknown intrinsic %q", t.Fn)
	} else if len(t.Args) != want {
		return val{}, fmt.Errorf("kernel: %s takes %d arguments, got %d", t.Fn, want, len(t.Args))
	}
	switch t.Fn {
	case expr.Sqrt, expr.Abs, expr.Exp, expr.Log:
		x, err := lw.lower(t.Args[0])
		if err != nil {
			return val{}, err
		}
		var o op
		var f func(float64) float64
		switch t.Fn {
		case expr.Sqrt:
			o, f = opSqrt, sqrt
		case expr.Abs:
			o, f = opAbs, abs
		case expr.Exp:
			o, f = opExp, exp
		default:
			o, f = opLog, logf
		}
		if x.konst {
			return val{konst: true, imm: f(x.imm)}, nil
		}
		lw.free(x)
		dst := lw.alloc()
		lw.emit(instr{op: o, dst: dst, a: uint16(x.reg)})
		return val{reg: int(dst)}, nil
	}
	// Two-argument intrinsics.
	l, err := lw.lower(t.Args[0])
	if err != nil {
		return val{}, err
	}
	r, err := lw.lower(t.Args[1])
	if err != nil {
		return val{}, err
	}
	if l.konst && r.konst {
		switch t.Fn {
		case expr.Min:
			return val{konst: true, imm: minf(l.imm, r.imm)}, nil
		case expr.Max:
			return val{konst: true, imm: maxf(l.imm, r.imm)}, nil
		}
		return val{konst: true, imm: pow(l.imm, r.imm)}, nil
	}
	lw.free(r)
	lw.free(l)
	dst := lw.alloc()
	switch {
	case !l.konst && !r.konst:
		var o op
		switch t.Fn {
		case expr.Min:
			o = opMin
		case expr.Max:
			o = opMax
		default:
			o = opPow
		}
		lw.emit(instr{op: o, dst: dst, a: uint16(l.reg), b: uint16(r.reg)})
	case r.konst:
		var o op
		switch t.Fn {
		case expr.Min:
			o = opMinImm
		case expr.Max:
			o = opMaxImm
		default:
			o = opPowImmR
		}
		lw.emit(instr{op: o, dst: dst, a: uint16(l.reg), imm: r.imm})
	default: // l.konst; min and max commute, pow does not
		var o op
		switch t.Fn {
		case expr.Min:
			o = opMinImm
		case expr.Max:
			o = opMaxImm
		default:
			o = opPowImmL
		}
		lw.emit(instr{op: o, dst: dst, a: uint16(r.reg), imm: l.imm})
	}
	return val{reg: int(dst)}, nil
}

// SetScratch routes register leases through pool under rank's shard. Any
// registers already leased return to their previous source first. A nil
// pool (the default) allocates registers plainly and lets the GC reclaim
// them with the program.
func (pr *Program) SetScratch(pool *bufpool.Pool, rank int) {
	if pr.pool == pool && pr.prank == rank {
		return
	}
	pr.ReleaseScratch()
	pr.pool = pool
	pr.prank = rank
}

// ReleaseScratch returns the leased registers to the pool. The next Run
// re-leases; callers that track pool.Outstanding should release when a
// run retires.
func (pr *Program) ReleaseScratch() {
	if pr.regs == nil {
		return
	}
	for i := range pr.regs {
		pr.pool.Put(pr.prank, pr.regs[i])
		pr.regs[i] = nil
	}
	pr.regs = nil
	pr.regCap = 0
}

func (pr *Program) ensureRegs(n int) {
	if pr.regs != nil && pr.regCap >= n {
		return
	}
	pr.ReleaseScratch()
	nr := pr.nregs
	if pr.fusedRegs > nr {
		nr = pr.fusedRegs
	}
	if nr < 1 {
		nr = 1
	}
	pr.regs = make([][]float64, nr)
	for i := range pr.regs {
		pr.regs[i] = pr.pool.Get(pr.prank, n)
	}
	pr.regCap = n
}

// Run executes the program over region in the derived loop order and
// reports which executor ran. When the innermost dimension is
// span-executable the fused tape runs over whole spans (always ascending —
// legal, since no dependence connects two points of a span). When it is not
// but a legal hyperplane of the two innermost levels exists, the fused tape
// runs over skewed diagonal runs, wave by wave. Otherwise the scalar tape
// runs the statements interleaved point by point in exactly the loop's
// directions.
func (pr *Program) Run(region grid.Region, loop dep.LoopSpec) Path {
	if region.Rank() != pr.rank {
		panic(fmt.Sprintf("kernel: region rank %d, program rank %d", region.Rank(), pr.rank))
	}
	v := loop.Perm[len(loop.Perm)-1]
	span := pr.spanOK[v]
	var sk dep.Skew
	skew := false
	if !span && pr.rank >= 2 {
		if s, ok := pr.skewFor(loop); ok && skewRunnable(region, s) {
			sk, skew = s, true
		}
	}
	path := PathScalar
	switch {
	case span:
		path = PathSpan
	case skew:
		path = PathSkewed
	}
	for d := 0; d < pr.rank; d++ {
		if region.Dim(d).Empty() {
			return path
		}
	}
	pr.initBase(region, loop, span, v)
	switch path {
	case PathSpan:
		d := region.Dim(v)
		pr.ensureRegs(d.Size())
		for fi := range pr.fields {
			pr.steps[fi] = pr.strides[fi][v] * d.Stride
		}
		pr.runSpan(region, loop, 0, d.Size())
	case PathSkewed:
		pr.runSkewed(region, loop, sk)
	default:
		pr.ensureRegs(1)
		pr.runScalar(region, loop, 0)
	}
	return path
}

// RunScalar executes the scalar tape unconditionally — every statement per
// point, interleaved, in the derived loop order — regardless of span or
// skew legality. It is the baseline engine behind -kernel=scalar.
func (pr *Program) RunScalar(region grid.Region, loop dep.LoopSpec) {
	if region.Rank() != pr.rank {
		panic(fmt.Sprintf("kernel: region rank %d, program rank %d", region.Rank(), pr.rank))
	}
	for d := 0; d < pr.rank; d++ {
		if region.Dim(d).Empty() {
			return
		}
	}
	pr.initBase(region, loop, false, 0)
	pr.ensureRegs(1)
	pr.runScalar(region, loop, 0)
}

// initBase sets each field's flat offset to the loop's starting corner. In
// span mode the inner dimension v always starts at its low end; every other
// mode starts every dimension at its direction start.
func (pr *Program) initBase(region grid.Region, loop dep.LoopSpec, span bool, v int) {
	for fi := range pr.fields {
		off := 0
		for d := 0; d < pr.rank; d++ {
			r := region.Dim(d)
			x := r.Lo
			if loop.Dirs[d] == grid.HighToLow && !(span && d == v) {
				x = r.Lo + (r.Size()-1)*r.Stride
			}
			off += (x - pr.lows[fi][d]) * pr.strides[fi][d]
		}
		pr.base[fi] = off
	}
}

// runSpan is the outer-loop odometer: levels 0..rank-2 step the per-field
// base offsets; the innermost level executes the fused tape over one whole
// span (the per-run steps are fixed before the recursion starts).
func (pr *Program) runSpan(region grid.Region, loop dep.LoopSpec, lvl, n int) {
	if lvl == pr.rank-1 {
		copy(pr.rbase, pr.base)
		pr.execRun(n)
		return
	}
	d := loop.Perm[lvl]
	r := region.Dim(d)
	cnt := r.Size()
	step := r.Stride
	if loop.Dirs[d] == grid.HighToLow {
		step = -step
	}
	save := pr.saved[lvl]
	copy(save, pr.base)
	for i := 0; ; i++ {
		pr.runSpan(region, loop, lvl+1, n)
		if i+1 >= cnt {
			break
		}
		for fi := range pr.base {
			pr.base[fi] += step * pr.strides[fi][d]
		}
	}
	copy(pr.base, save)
}

// execRun executes the fused tape over one run of n points — a span or a
// skewed diagonal. Each field's start offset is rbase[fld] and per-element
// flat step is steps[fld] (negative for runs that walk a dimension
// downward). The arithmetic bodies are the register-blocked helpers of
// vec.go; the math-call ops stay as plain loops, where the call dominates.
func (pr *Program) execRun(n int) {
	for ii := range pr.fused {
		in := &pr.fused[ii]
		switch in.op {
		case opLoad:
			dst := pr.regs[in.dst][:n]
			src := pr.data[in.fld]
			b := pr.rbase[in.fld] + in.off
			if step := pr.steps[in.fld]; step == 1 {
				copy(dst, src[b:b+n])
			} else {
				vgather(dst, src, b, step)
			}
		case opStore:
			out := pr.regs[in.a][:n]
			dd := pr.data[in.fld]
			b := pr.rbase[in.fld]
			if step := pr.steps[in.fld]; step == 1 {
				copy(dd[b:b+n], out)
			} else {
				vscatter(dd, out, b, step)
			}
		case opConst:
			vfill(pr.regs[in.dst][:n], in.imm)
		case opAdd:
			vadd(pr.regs[in.dst][:n], pr.regs[in.a], pr.regs[in.b])
		case opSub:
			vsub(pr.regs[in.dst][:n], pr.regs[in.a], pr.regs[in.b])
		case opMul:
			vmul(pr.regs[in.dst][:n], pr.regs[in.a], pr.regs[in.b])
		case opDiv:
			vdiv(pr.regs[in.dst][:n], pr.regs[in.a], pr.regs[in.b])
		case opAddImm:
			vaddImm(pr.regs[in.dst][:n], pr.regs[in.a], in.imm)
		case opSubImmR:
			vsubImmR(pr.regs[in.dst][:n], pr.regs[in.a], in.imm)
		case opSubImmL:
			vsubImmL(pr.regs[in.dst][:n], pr.regs[in.a], in.imm)
		case opMulImm:
			vmulImm(pr.regs[in.dst][:n], pr.regs[in.a], in.imm)
		case opDivImmR:
			vdivImmR(pr.regs[in.dst][:n], pr.regs[in.a], in.imm)
		case opDivImmL:
			vdivImmL(pr.regs[in.dst][:n], pr.regs[in.a], in.imm)
		case opNeg:
			vneg(pr.regs[in.dst][:n], pr.regs[in.a])
		case opSqrt:
			dst, a := pr.regs[in.dst][:n], pr.regs[in.a][:n]
			for e := range dst {
				dst[e] = sqrt(a[e])
			}
		case opAbs:
			dst, a := pr.regs[in.dst][:n], pr.regs[in.a][:n]
			for e := range dst {
				dst[e] = abs(a[e])
			}
		case opExp:
			dst, a := pr.regs[in.dst][:n], pr.regs[in.a][:n]
			for e := range dst {
				dst[e] = exp(a[e])
			}
		case opLog:
			dst, a := pr.regs[in.dst][:n], pr.regs[in.a][:n]
			for e := range dst {
				dst[e] = logf(a[e])
			}
		case opMin:
			vmin(pr.regs[in.dst][:n], pr.regs[in.a], pr.regs[in.b])
		case opMax:
			vmax(pr.regs[in.dst][:n], pr.regs[in.a], pr.regs[in.b])
		case opPow:
			dst, a, b := pr.regs[in.dst][:n], pr.regs[in.a][:n], pr.regs[in.b][:n]
			for e := range dst {
				dst[e] = pow(a[e], b[e])
			}
		case opMinImm:
			vminImm(pr.regs[in.dst][:n], pr.regs[in.a], in.imm)
		case opMaxImm:
			vmaxImm(pr.regs[in.dst][:n], pr.regs[in.a], in.imm)
		case opPowImmR:
			dst, a := pr.regs[in.dst][:n], pr.regs[in.a][:n]
			for e := range dst {
				dst[e] = pow(a[e], in.imm)
			}
		case opPowImmL:
			dst, a := pr.regs[in.dst][:n], pr.regs[in.a][:n]
			for e := range dst {
				dst[e] = pow(in.imm, a[e])
			}
		}
	}
}

// runScalar is the scalar-tape odometer: all levels step base offsets, and
// the innermost level executes every statement per point, interleaved, in
// exactly the derived loop's directions.
func (pr *Program) runScalar(region grid.Region, loop dep.LoopSpec, lvl int) {
	d := loop.Perm[lvl]
	r := region.Dim(d)
	cnt := r.Size()
	step := r.Stride
	if loop.Dirs[d] == grid.HighToLow {
		step = -step
	}
	save := pr.saved[lvl]
	copy(save, pr.base)
	inner := lvl == pr.rank-1
	for i := 0; ; i++ {
		if inner {
			pr.execPoint()
		} else {
			pr.runScalar(region, loop, lvl+1)
		}
		if i+1 >= cnt {
			break
		}
		for fi := range pr.base {
			pr.base[fi] += step * pr.strides[fi][d]
		}
	}
	copy(pr.base, save)
}

// execPoint runs every statement's tape at the current point through the
// registers' element 0.
func (pr *Program) execPoint() {
	for si := range pr.stmts {
		st := &pr.stmts[si]
		for ii := range st.ins {
			in := &st.ins[ii]
			var x float64
			switch in.op {
			case opLoad:
				x = pr.data[in.fld][pr.base[in.fld]+in.off]
			case opConst:
				x = in.imm
			case opAdd:
				x = pr.regs[in.a][0] + pr.regs[in.b][0]
			case opSub:
				x = pr.regs[in.a][0] - pr.regs[in.b][0]
			case opMul:
				x = pr.regs[in.a][0] * pr.regs[in.b][0]
			case opDiv:
				x = pr.regs[in.a][0] / pr.regs[in.b][0]
			case opAddImm:
				x = pr.regs[in.a][0] + in.imm
			case opSubImmR:
				x = pr.regs[in.a][0] - in.imm
			case opSubImmL:
				x = in.imm - pr.regs[in.a][0]
			case opMulImm:
				x = pr.regs[in.a][0] * in.imm
			case opDivImmR:
				x = pr.regs[in.a][0] / in.imm
			case opDivImmL:
				x = in.imm / pr.regs[in.a][0]
			case opNeg:
				x = -pr.regs[in.a][0]
			case opSqrt:
				x = sqrt(pr.regs[in.a][0])
			case opAbs:
				x = abs(pr.regs[in.a][0])
			case opExp:
				x = exp(pr.regs[in.a][0])
			case opLog:
				x = logf(pr.regs[in.a][0])
			case opMin:
				x = minf(pr.regs[in.a][0], pr.regs[in.b][0])
			case opMax:
				x = maxf(pr.regs[in.a][0], pr.regs[in.b][0])
			case opPow:
				x = pow(pr.regs[in.a][0], pr.regs[in.b][0])
			case opMinImm:
				x = minf(pr.regs[in.a][0], in.imm)
			case opMaxImm:
				x = maxf(pr.regs[in.a][0], in.imm)
			case opPowImmR:
				x = pow(pr.regs[in.a][0], in.imm)
			case opPowImmL:
				x = pow(in.imm, pr.regs[in.a][0])
			}
			pr.regs[in.dst][0] = x
		}
		pr.data[st.dst][pr.base[st.dst]] = pr.regs[st.out][0]
	}
}
