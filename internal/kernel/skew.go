package kernel

import (
	"wavefront/internal/dep"
	"wavefront/internal/grid"
)

// The skewed executor: when the innermost dimension carries a dependence
// (no span is legal) but the two innermost loop levels admit a hyperplane
// t = Ca*ia + Cb*ib with every in-plane dependence distance strictly
// positive under it (dep.DeriveSkew), the plane executes wave by wave and
// each wave is one unit-stride-in-iteration-space diagonal run of the fused
// tape.
//
// Addressing. Iteration coordinates (x, y) count from each dimension's
// direction start; a field's flat offset at (x, y) is
//
//	base + x*stepA + y*stepB
//
// where stepA/stepB are the direction-signed element strides. With coprime
// (Ca, Cb) the points of wave w form a single arithmetic progression
// stepping (x, y) by (Cb, -Ca), so the per-element flat step is the
// constant Cb*stepA - Ca*stepB and the fused tape's run executor applies
// unchanged. x ranges over the congruence class x ≡ w·Ca⁻¹ (mod Cb)
// clipped to [max(0, ceil((w - Cb·(Nb-1))/Ca)), min(Na-1, floor(w/Ca))].
//
// Legality. Every UDV with a nonzero component outside the plane is carried
// by an outer loop (the derived nest satisfies it, and outer levels still
// execute in exactly the derived order). Every in-plane UDV has positive
// dot product with (Ca, Cb), so its source lies on a strictly earlier wave,
// executed before this run starts; a dependence between two points of one
// run would need dot product zero, which the strict inequality excludes.
// The runs therefore execute an order-legal permutation of the same
// per-point arithmetic as the scalar and closure engines — bit-identical
// results, the same argument that makes the task-DAG schedule exact.

// skewCache memoizes the hyperplane derivation for one loop spec. A kernel
// runs every tile with the same derived loop, so after the first Run the
// skew (or the proof that none exists) is a slice-compare away.
type skewCache struct {
	loop dep.LoopSpec
	sk   dep.Skew
	ok   bool
}

// skewFor derives (and caches) the hyperplane for loop.
func (pr *Program) skewFor(loop dep.LoopSpec) (dep.Skew, bool) {
	if c := pr.skc; c != nil && loopEqual(c.loop, loop) {
		return c.sk, c.ok
	}
	c := &skewCache{loop: dep.LoopSpec{
		Perm: append([]int(nil), loop.Perm...),
		Dirs: append([]grid.LoopDir(nil), loop.Dirs...),
	}}
	if sk, err := dep.DeriveSkew(pr.rank, pr.udvs, loop); err == nil {
		c.sk, c.ok = sk, true
	}
	pr.skc = c
	return c.sk, c.ok
}

func loopEqual(a, b dep.LoopSpec) bool {
	if len(a.Perm) != len(b.Perm) || len(a.Dirs) != len(b.Dirs) {
		return false
	}
	for i := range a.Perm {
		if a.Perm[i] != b.Perm[i] {
			return false
		}
	}
	for i := range a.Dirs {
		if a.Dirs[i] != b.Dirs[i] {
			return false
		}
	}
	return true
}

// skewRunnable gates the skewed executor on unit region strides along the
// plane dimensions: UDV distances are in element units, so on a strided
// region the iteration-space distances would need rescaling — the scalar
// tape handles that (rare) case instead.
func skewRunnable(region grid.Region, sk dep.Skew) bool {
	return region.Dim(sk.A).Stride == 1 && region.Dim(sk.B).Stride == 1
}

// SkewRunLen reports the longest diagonal run the skewed executor would
// produce over region under loop, or 0 when no legal hyperplane exists (or
// the inner loop pair is strided). The scan layer compares it against the
// span profitability threshold before preferring the tape over the rank-2
// closure pair.
func (pr *Program) SkewRunLen(region grid.Region, loop dep.LoopSpec) int {
	if pr.rank < 2 || region.Rank() != pr.rank {
		return 0
	}
	sk, ok := pr.skewFor(loop)
	if !ok || !skewRunnable(region, sk) {
		return 0
	}
	na, nb := region.Dim(sk.A).Size(), region.Dim(sk.B).Size()
	if na == 0 || nb == 0 {
		return 0
	}
	m := (na + sk.Cb - 1) / sk.Cb
	if k := (nb + sk.Ca - 1) / sk.Ca; k < m {
		m = k
	}
	return m
}

// runSkewed executes the fused tape over hyperplane waves: levels
// 0..rank-3 step the per-field base offsets exactly as the other odometers
// do; the two innermost levels execute as diagonal runs.
func (pr *Program) runSkewed(region grid.Region, loop dep.LoopSpec, sk dep.Skew) {
	na, nb := region.Dim(sk.A).Size(), region.Dim(sk.B).Size()
	maxRun := (na + sk.Cb - 1) / sk.Cb
	if m := (nb + sk.Ca - 1) / sk.Ca; m < maxRun {
		maxRun = m
	}
	pr.ensureRegs(maxRun)
	for fi := range pr.fields {
		sa := pr.strides[fi][sk.A]
		if loop.Dirs[sk.A] == grid.HighToLow {
			sa = -sa
		}
		sb := pr.strides[fi][sk.B]
		if loop.Dirs[sk.B] == grid.HighToLow {
			sb = -sb
		}
		pr.stepA[fi], pr.stepB[fi] = sa, sb
		pr.steps[fi] = sk.Cb*sa - sk.Ca*sb
	}
	pr.runSkewOuter(region, loop, 0, na, nb, sk.Ca, sk.Cb)
}

func (pr *Program) runSkewOuter(region grid.Region, loop dep.LoopSpec, lvl, na, nb, ca, cb int) {
	if lvl == pr.rank-2 {
		pr.execWaves(na, nb, ca, cb)
		return
	}
	d := loop.Perm[lvl]
	r := region.Dim(d)
	cnt := r.Size()
	step := r.Stride
	if loop.Dirs[d] == grid.HighToLow {
		step = -step
	}
	save := pr.saved[lvl]
	copy(save, pr.base)
	for i := 0; ; i++ {
		pr.runSkewOuter(region, loop, lvl+1, na, nb, ca, cb)
		if i+1 >= cnt {
			break
		}
		for fi := range pr.base {
			pr.base[fi] += step * pr.strides[fi][d]
		}
	}
	copy(pr.base, save)
}

// execWaves sweeps one (A, B) plane wave by wave. base holds each field's
// flat offset of the plane's iteration origin (both dimensions at their
// direction start); wave w's run starts at iteration (xlo, y0) and its
// per-element flat steps were precomputed by runSkewed.
func (pr *Program) execWaves(na, nb, ca, cb int) {
	// Ca⁻¹ mod Cb selects the congruence class of x on each wave; the
	// coefficients are coprime and tiny, so a linear scan finds it.
	inv := 0
	if cb > 1 {
		for i := 1; i < cb; i++ {
			if ca*i%cb == 1 {
				inv = i
				break
			}
		}
	}
	wmax := ca*(na-1) + cb*(nb-1)
	for w := 0; w <= wmax; w++ {
		xhi := w / ca
		if xhi > na-1 {
			xhi = na - 1
		}
		xlo := 0
		if t := w - cb*(nb-1); t > 0 {
			xlo = (t + ca - 1) / ca
		}
		if cb > 1 {
			r := w % cb * inv % cb
			if d := (r - xlo%cb + cb) % cb; d > 0 {
				xlo += d
			}
		}
		if xlo > xhi {
			continue
		}
		m := (xhi-xlo)/cb + 1
		y0 := (w - ca*xlo) / cb
		for fi := range pr.rbase {
			pr.rbase[fi] = pr.base[fi] + xlo*pr.stepA[fi] + y0*pr.stepB[fi]
		}
		pr.execRun(m)
	}
}
