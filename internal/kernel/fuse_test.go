package kernel

import (
	"math"
	"testing"

	"wavefront/internal/dep"
	"wavefront/internal/expr"
	"wavefront/internal/field"
	"wavefront/internal/grid"
)

func fuseEnv(n int) *expr.MapEnv {
	bounds := grid.Square(2, -1, n+1)
	env := &expr.MapEnv{
		Arrays: map[string]*field.Field{
			"a": field.MustNew("a", bounds, field.RowMajor),
			"b": field.MustNew("b", bounds, field.RowMajor),
			"u": field.MustNew("u", bounds, field.RowMajor),
			"v": field.MustNew("v", bounds, field.RowMajor),
		},
		Scalars: map[string]float64{},
	}
	for i, name := range []string{"a", "b", "u", "v"} {
		k := float64(i + 1)
		env.Arrays[name].FillFunc(bounds, func(p grid.Point) float64 {
			return k + 0.31*float64(p[0]) + 0.07*float64(p[1])
		})
	}
	return env
}

// TestFusedLoadDedup pins the fusion contract "one load per shared
// operand": two statements reading the same shifted operands share a single
// load each in the fused tape.
func TestFusedLoadDedup(t *testing.T) {
	env := fuseEnv(8)
	at := func(name string, dist ...int) expr.Node { return expr.Ref(name).At(grid.Direction(dist)) }
	// Both statements read a@(0,1) and a@(0,-1); naive lowering would load
	// four vectors, fusion needs only two.
	rhsU := expr.Binary{Op: expr.Add, L: at("a", 0, 1), R: at("a", 0, -1)}
	rhsV := expr.Binary{Op: expr.Mul, L: at("a", 0, -1), R: at("a", 0, 1)}
	pr, err := Lower(2, []*field.Field{env.Arrays["u"], env.Arrays["v"]},
		[]expr.Node{rhsU, rhsV}, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := pr.FusedLoads(); got != 2 {
		t.Errorf("fused tape performs %d loads, want 2 (one per shared operand)", got)
	}
}

// TestFusedStoreForwarding: a later statement reading an earlier
// statement's destination at zero distance consumes the stored register
// directly — no load at all for that operand.
func TestFusedStoreForwarding(t *testing.T) {
	env := fuseEnv(8)
	rhsU := expr.Binary{Op: expr.Mul, L: expr.Ref("a"), R: expr.Const(2)}
	rhsV := expr.Binary{Op: expr.Add, L: expr.Ref("u"), R: expr.Ref("a")}
	pr, err := Lower(2, []*field.Field{env.Arrays["u"], env.Arrays["v"]},
		[]expr.Node{rhsU, rhsV}, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Only "a" is ever loaded (once, shared by both statements); the read
	// of u forwards from the store.
	if got := pr.FusedLoads(); got != 1 {
		t.Errorf("fused tape performs %d loads, want 1 (store-to-load forwarded)", got)
	}
}

// TestFusedStoreInvalidation: a *shifted* read of an earlier destination
// must NOT forward (the stored register holds offset-0 values), and a
// cached load of the destination made before the store must be dropped.
// The shifted read here is along the span axis at distance (0,1), an
// anti-dependence the span order preserves; bit-identity against the
// scalar tape proves the cache invalidation is sound.
func TestFusedStoreInvalidation(t *testing.T) {
	at := func(name string, dist ...int) expr.Node { return expr.Ref(name).At(grid.Direction(dist)) }
	// Statement 1 reads u@(0,1) then writes u; statement 2 reads u@(0,1)
	// again — it must see the NEW u, not statement 1's cached load.
	rhsU := expr.Binary{Op: expr.Add, L: at("u", 0, 1), R: expr.Ref("a")}
	rhsV := expr.Binary{Op: expr.Add, L: at("u", 0, 1), R: expr.Ref("b")}
	udvs := []dep.UDV{{Kind: dep.Anti, Dist: grid.Direction{0, -1}, Array: "u"}}
	region := grid.Square(2, 0, 7)
	loop := dep.Identity(2)

	envA, envB := fuseEnv(8), fuseEnv(8)
	prA, err := Lower(2, []*field.Field{envA.Arrays["u"], envA.Arrays["v"]},
		[]expr.Node{rhsU, rhsV}, envA, udvs)
	if err != nil {
		t.Fatal(err)
	}
	prB, err := Lower(2, []*field.Field{envB.Arrays["u"], envB.Arrays["v"]},
		[]expr.Node{rhsU, rhsV}, envB, udvs)
	if err != nil {
		t.Fatal(err)
	}
	prA.Run(region, loop)
	prB.RunScalar(region, loop)
	for _, name := range []string{"u", "v"} {
		got, want := envA.Arrays[name], envB.Arrays[name]
		region.Each(nil, func(p grid.Point) {
			if math.Float64bits(got.At(p)) != math.Float64bits(want.At(p)) {
				t.Fatalf("%s at %v: fused %v != scalar %v", name, p, got.At(p), want.At(p))
			}
		})
	}
}

// TestFusedSkewedMultiStatement runs a two-statement recurrence down the
// skewed path and checks bit-identity against the scalar tape: fusion and
// skewed addressing compose.
func TestFusedSkewedMultiStatement(t *testing.T) {
	at := func(name string, dist ...int) expr.Node { return expr.Ref(name).At(grid.Direction(dist)) }
	add := func(l, r expr.Node) expr.Node { return expr.Binary{Op: expr.Add, L: l, R: r} }
	// u is a two-dimensional recurrence (skew required); v accumulates u at
	// zero distance (store-forwarded) plus the same shared src reads.
	rhsU := add(add(at("u", -1, 0), at("u", 0, -1)), expr.Ref("a"))
	rhsV := add(expr.Ref("u"), expr.Ref("a"))
	udvs := []dep.UDV{udv(1, 0), udv(0, 1)}
	region := grid.Square(2, 0, 9)
	loop := dep.Identity(2)

	envA, envB := fuseEnv(10), fuseEnv(10)
	prA, err := Lower(2, []*field.Field{envA.Arrays["u"], envA.Arrays["v"]},
		[]expr.Node{rhsU, rhsV}, envA, udvs)
	if err != nil {
		t.Fatal(err)
	}
	prB, err := Lower(2, []*field.Field{envB.Arrays["u"], envB.Arrays["v"]},
		[]expr.Node{rhsU, rhsV}, envB, udvs)
	if err != nil {
		t.Fatal(err)
	}
	if path := prA.Run(region, loop); path != PathSkewed {
		t.Fatalf("Run took %v, want skewed", path)
	}
	prB.RunScalar(region, loop)
	for _, name := range []string{"u", "v"} {
		if d := envA.Arrays[name].MaxAbsDiff(region, envB.Arrays[name]); d != 0 {
			t.Errorf("%s: fused skewed run differs from scalar by %g", name, d)
		}
	}
}
