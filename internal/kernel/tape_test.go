package kernel

import (
	"math"
	"math/rand"
	"testing"

	"wavefront/internal/bufpool"
	"wavefront/internal/dep"
	"wavefront/internal/expr"
	"wavefront/internal/field"
	"wavefront/internal/grid"
)

func udv(dist ...int) dep.UDV {
	return dep.UDV{Kind: dep.True, Dist: grid.Direction(dist)}
}

func TestSpanMask(t *testing.T) {
	cases := []struct {
		name string
		rank int
		udvs []dep.UDV
		want []bool
	}{
		{"no deps", 2, nil, []bool{true, true}},
		{"zero UDV ignored", 2, []dep.UDV{udv(0, 0)}, []bool{true, true}},
		{"tomcatv forward", 2, []dep.UDV{udv(1, 0)}, []bool{false, true}},
		{"inner-carried", 2, []dep.UDV{udv(0, 1)}, []bool{true, false}},
		{"diagonal is outer-carried", 2, []dep.UDV{udv(1, 1)}, []bool{true, true}},
		{"sweep3d axes", 3, []dep.UDV{udv(1, 0, 0), udv(0, 1, 0), udv(0, 0, 1)}, []bool{false, false, false}},
		{"mixed", 3, []dep.UDV{udv(1, 1, 0), udv(0, 0, 2)}, []bool{true, true, false}},
	}
	for _, c := range cases {
		if got := SpanMask(c.rank, c.udvs); !boolsEq(got, c.want) {
			t.Errorf("%s: SpanMask = %v, want %v", c.name, got, c.want)
		}
	}
}

func boolsEq(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// genTree builds a random expression over arrays "a" (RowMajor) and "b"
// (ColMajor) with shifts within the halo. Field values stay in [0.5, 3.5]
// so log/sqrt/pow stay finite — bit-identity is the point, not NaN trivia
// (the engines share NaN behavior anyway; Eval's min/max does not).
func genTree(rng *rand.Rand, rank, depth int) expr.Node {
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(4) {
		case 0:
			return expr.Const(math.Round(rng.Float64()*16-8) / 4)
		case 1:
			return expr.Scalar("s")
		default:
			name := "a"
			if rng.Intn(2) == 0 {
				name = "b"
			}
			r := expr.Ref(name)
			if rng.Intn(2) == 0 {
				shift := make(grid.Direction, rank)
				for d := range shift {
					shift[d] = rng.Intn(3) - 1
				}
				r = r.At(shift)
			}
			return r
		}
	}
	switch rng.Intn(8) {
	case 0:
		return expr.Unary{Op: expr.Neg, X: genTree(rng, rank, depth-1)}
	case 1:
		return expr.Call{Fn: expr.Sqrt, Args: []expr.Node{expr.Call{Fn: expr.Abs, Args: []expr.Node{genTree(rng, rank, depth-1)}}}}
	case 2:
		return expr.Call{Fn: expr.Min, Args: []expr.Node{genTree(rng, rank, depth-1), genTree(rng, rank, depth-1)}}
	case 3:
		return expr.Call{Fn: expr.Max, Args: []expr.Node{genTree(rng, rank, depth-1), genTree(rng, rank, depth-1)}}
	default:
		ops := []expr.Op{expr.Add, expr.Sub, expr.Mul, expr.Div}
		return expr.Binary{Op: ops[rng.Intn(len(ops))], L: genTree(rng, rank, depth-1), R: genTree(rng, rank, depth-1)}
	}
}

// forceScalar builds UDVs that disqualify every dimension from span
// execution, steering Run onto the scalar tape.
func forceScalar(rank int) []dep.UDV {
	var udvs []dep.UDV
	for d := 0; d < rank; d++ {
		dist := make(grid.Direction, rank)
		dist[d] = 1
		udvs = append(udvs, dep.UDV{Kind: dep.True, Dist: dist})
	}
	return udvs
}

func randLoop(rng *rand.Rand, rank int) dep.LoopSpec {
	spec := dep.Identity(rank)
	rng.Shuffle(rank, func(i, j int) { spec.Perm[i], spec.Perm[j] = spec.Perm[j], spec.Perm[i] })
	for d := range spec.Dirs {
		if rng.Intn(2) == 0 {
			spec.Dirs[d] = grid.HighToLow
		}
	}
	return spec
}

// TestTapeMatchesClosure is the core property test: random expression trees
// × random regions (strided included) × random loop orders must agree
// bit-for-bit with Eval and Compile, on the span tape and on the forced
// scalar tape, across ranks 1–3 and both layouts.
func TestTapeMatchesClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 400; iter++ {
		rank := 1 + rng.Intn(3)
		halo := 1
		n := 3 + rng.Intn(5)
		bounds := grid.Square(rank, -halo, n+halo)
		layA, layB := field.RowMajor, field.ColMajor
		if rng.Intn(2) == 0 {
			layA, layB = layB, layA
		}
		env := &expr.MapEnv{
			Arrays: map[string]*field.Field{
				"a":   field.MustNew("a", bounds, layA),
				"b":   field.MustNew("b", bounds, layB),
				"dst": field.MustNew("dst", bounds, layA),
			},
			Scalars: map[string]float64{"s": 1.25},
		}
		for _, name := range []string{"a", "b"} {
			f := env.Arrays[name]
			f.FillFunc(bounds, func(grid.Point) float64 { return 0.5 + 3*rng.Float64() })
		}

		// Random interior region, possibly strided.
		dims := make([]grid.Range, rank)
		for d := range dims {
			lo := rng.Intn(2)
			hi := n - 1 - rng.Intn(2)
			if hi < lo {
				hi = lo
			}
			dims[d] = grid.Range{Lo: lo, Hi: hi, Stride: 1 + rng.Intn(2)}
		}
		region := grid.MustRegion(dims...)

		node := genTree(rng, rank, 3)
		cl, err := expr.Compile(node, env)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		loop := randLoop(rng, rank)

		for _, scalar := range []bool{false, true} {
			var udvs []dep.UDV
			if scalar {
				udvs = forceScalar(rank)
			}
			pr, err := Lower(rank, []*field.Field{env.Arrays["dst"]}, []expr.Node{node}, env, udvs)
			if err != nil {
				t.Fatalf("Lower: %v", err)
			}
			if scalar == pr.SpanOK(loop.Perm[rank-1]) {
				t.Fatalf("scalar=%v but SpanOK(%d)=%v", scalar, loop.Perm[rank-1], pr.SpanOK(loop.Perm[rank-1]))
			}
			env.Arrays["dst"].Fill(0)
			pr.Run(region, loop)
			dst := env.Arrays["dst"]
			region.Each(nil, func(p grid.Point) {
				want := cl(p)
				got := dst.At(p)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("iter %d scalar=%v %s at %v (region %v loop %v): tape %v != closure %v",
						iter, scalar, node, p, region, loop, got, want)
				}
				if ev := node.Eval(env, p); math.Float64bits(ev) != math.Float64bits(want) &&
					!(math.IsNaN(ev) && math.IsNaN(want)) {
					t.Fatalf("iter %d %s at %v: Eval %v != Compile %v", iter, node, p, ev, want)
				}
			})
		}
	}
}

// TestTapeMultiStatement checks statement-at-a-time span execution against
// the closure semantics when statement 2 reads statement 1's output at zero
// distance (the only cross-statement dependence span execution must — and
// does — preserve).
func TestTapeMultiStatement(t *testing.T) {
	bounds := grid.Square(2, 0, 7)
	mk := func() *expr.MapEnv {
		env := &expr.MapEnv{
			Arrays: map[string]*field.Field{
				"a": field.MustNew("a", bounds, field.RowMajor),
				"u": field.MustNew("u", bounds, field.RowMajor),
				"v": field.MustNew("v", bounds, field.RowMajor),
			},
			Scalars: map[string]float64{},
		}
		env.Arrays["a"].FillFunc(bounds, func(p grid.Point) float64 {
			return 1 + 0.3*float64(p[0]) + 0.07*float64(p[1])
		})
		return env
	}
	rhsU := expr.Binary{Op: expr.Mul, L: expr.Ref("a"), R: expr.Const(2)}
	rhsV := expr.Binary{Op: expr.Add, L: expr.Ref("u"), R: expr.Ref("a")} // reads stmt 1's result

	region := grid.Square(2, 1, 6)
	loop := dep.Identity(2)

	ref := mk()
	clU, _ := expr.Compile(rhsU, ref)
	clV, _ := expr.Compile(rhsV, ref)
	region.Each(nil, func(p grid.Point) {
		ref.Arrays["u"].Set(p, clU(p))
		ref.Arrays["v"].Set(p, clV(p))
	})

	env := mk()
	pr, err := Lower(2, []*field.Field{env.Arrays["u"], env.Arrays["v"]},
		[]expr.Node{rhsU, rhsV}, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	pr.Run(region, loop)
	for _, name := range []string{"u", "v"} {
		if d := env.Arrays[name].MaxAbsDiff(region, ref.Arrays[name]); d != 0 {
			t.Errorf("%s: span execution differs from per-point by %g", name, d)
		}
	}
}

// TestScratchPool checks the register lease lifecycle: leases come from the
// pool, survive repeated runs without re-leasing, and drain on release.
func TestScratchPool(t *testing.T) {
	bounds := grid.Square(2, 0, 9)
	env := &expr.MapEnv{
		Arrays: map[string]*field.Field{
			"a":   field.MustNew("a", bounds, field.RowMajor),
			"dst": field.MustNew("dst", bounds, field.RowMajor),
		},
		Scalars: map[string]float64{},
	}
	env.Arrays["a"].Fill(1.5)
	node := expr.Binary{Op: expr.Add,
		L: expr.Binary{Op: expr.Mul, L: expr.Ref("a"), R: expr.Ref("a").At(grid.Direction{0, 1})},
		R: expr.Ref("a").At(grid.Direction{0, -1})}
	pr, err := Lower(2, []*field.Field{env.Arrays["dst"]}, []expr.Node{node}, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Registers() < 2 {
		t.Fatalf("expected >= 2 registers, got %d", pr.Registers())
	}
	pool := bufpool.NewWithConfig(2, bufpool.Config{Track: true, Poison: true})
	pr.SetScratch(pool, 1)
	region := grid.Square(2, 1, 8)
	pr.Run(region, dep.Identity(2))
	if out := pool.Outstanding(); out != pr.Registers() {
		t.Errorf("after Run: Outstanding = %d, want %d", out, pr.Registers())
	}
	st0 := pool.Stats()
	for i := 0; i < 5; i++ {
		pr.Run(region, dep.Identity(2)) // same span length: no re-lease
	}
	if st1 := pool.Stats(); st1.Hits != st0.Hits || st1.Misses != st0.Misses {
		t.Errorf("steady-state reruns touched the pool: %+v -> %+v", st0, st1)
	}
	pr.ReleaseScratch()
	if out := pool.Outstanding(); out != 0 {
		t.Errorf("after ReleaseScratch: Outstanding = %d, want 0", out)
	}
	// Re-running re-leases (now hits) and still computes.
	pr.Run(region, dep.Identity(2))
	pr.ReleaseScratch()
	if got := env.Arrays["dst"].At(grid.Point{4, 4}); got != 1.5*1.5+1.5 {
		t.Errorf("pooled run computed %g, want %g", got, 1.5*1.5+1.5)
	}
}

func TestLowerErrors(t *testing.T) {
	bounds2 := grid.Square(2, 0, 4)
	bounds3 := grid.Square(3, 0, 4)
	env := &expr.MapEnv{
		Arrays: map[string]*field.Field{
			"a": field.MustNew("a", bounds2, field.RowMajor),
			"v": field.MustNew("v", bounds3, field.RowMajor),
		},
		Scalars: map[string]float64{},
	}
	dst := env.Arrays["a"]
	if _, err := Lower(2, []*field.Field{dst}, []expr.Node{expr.Ref("zz")}, env, nil); err == nil {
		t.Error("unbound array must fail to lower")
	}
	if _, err := Lower(2, []*field.Field{dst}, []expr.Node{expr.Scalar("zz")}, env, nil); err == nil {
		t.Error("unbound scalar must fail to lower")
	}
	if _, err := Lower(2, []*field.Field{dst}, []expr.Node{expr.Ref("v")}, env, nil); err == nil {
		t.Error("rank-mismatched reference must fail to lower")
	}
	if _, err := Lower(2, []*field.Field{nil}, []expr.Node{expr.Const(1)}, env, nil); err == nil {
		t.Error("nil destination must fail to lower")
	}
}
