package kernel

// Register-blocked run bodies: every helper unrolls by four with the four
// partial results held in locals, so the compiler keeps them in machine
// registers and schedules the independent element operations together; the
// up-front re-slices hoist the bounds checks out of the loops. The
// element-wise arithmetic is exactly the scalar expression per element — no
// reassociation, no fused multiply-add — so blocking cannot perturb
// bit-identity with the closure engine. A destination may alias an operand
// (the register compactor reuses operand registers): each group reads all
// its inputs before writing, and groups are disjoint, so aliasing is safe.

func vfill(dst []float64, imm float64) {
	e := 0
	for ; e+4 <= len(dst); e += 4 {
		dst[e], dst[e+1], dst[e+2], dst[e+3] = imm, imm, imm, imm
	}
	for ; e < len(dst); e++ {
		dst[e] = imm
	}
}

func vgather(dst, src []float64, b, step int) {
	n := len(dst)
	e := 0
	for ; e+4 <= n; e += 4 {
		i := b + e*step
		d0, d1, d2, d3 := src[i], src[i+step], src[i+2*step], src[i+3*step]
		dst[e], dst[e+1], dst[e+2], dst[e+3] = d0, d1, d2, d3
	}
	for ; e < n; e++ {
		dst[e] = src[b+e*step]
	}
}

func vscatter(dst, src []float64, b, step int) {
	n := len(src)
	e := 0
	for ; e+4 <= n; e += 4 {
		i := b + e*step
		s0, s1, s2, s3 := src[e], src[e+1], src[e+2], src[e+3]
		dst[i], dst[i+step], dst[i+2*step], dst[i+3*step] = s0, s1, s2, s3
	}
	for ; e < n; e++ {
		dst[b+e*step] = src[e]
	}
}

func vadd(dst, a, b []float64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	e := 0
	for ; e+4 <= n; e += 4 {
		d0, d1 := a[e]+b[e], a[e+1]+b[e+1]
		d2, d3 := a[e+2]+b[e+2], a[e+3]+b[e+3]
		dst[e], dst[e+1], dst[e+2], dst[e+3] = d0, d1, d2, d3
	}
	for ; e < n; e++ {
		dst[e] = a[e] + b[e]
	}
}

func vsub(dst, a, b []float64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	e := 0
	for ; e+4 <= n; e += 4 {
		d0, d1 := a[e]-b[e], a[e+1]-b[e+1]
		d2, d3 := a[e+2]-b[e+2], a[e+3]-b[e+3]
		dst[e], dst[e+1], dst[e+2], dst[e+3] = d0, d1, d2, d3
	}
	for ; e < n; e++ {
		dst[e] = a[e] - b[e]
	}
}

func vmul(dst, a, b []float64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	e := 0
	for ; e+4 <= n; e += 4 {
		d0, d1 := a[e]*b[e], a[e+1]*b[e+1]
		d2, d3 := a[e+2]*b[e+2], a[e+3]*b[e+3]
		dst[e], dst[e+1], dst[e+2], dst[e+3] = d0, d1, d2, d3
	}
	for ; e < n; e++ {
		dst[e] = a[e] * b[e]
	}
}

func vdiv(dst, a, b []float64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	e := 0
	for ; e+4 <= n; e += 4 {
		d0, d1 := a[e]/b[e], a[e+1]/b[e+1]
		d2, d3 := a[e+2]/b[e+2], a[e+3]/b[e+3]
		dst[e], dst[e+1], dst[e+2], dst[e+3] = d0, d1, d2, d3
	}
	for ; e < n; e++ {
		dst[e] = a[e] / b[e]
	}
}

func vaddImm(dst, a []float64, imm float64) {
	n := len(dst)
	a = a[:n]
	e := 0
	for ; e+4 <= n; e += 4 {
		d0, d1, d2, d3 := a[e]+imm, a[e+1]+imm, a[e+2]+imm, a[e+3]+imm
		dst[e], dst[e+1], dst[e+2], dst[e+3] = d0, d1, d2, d3
	}
	for ; e < n; e++ {
		dst[e] = a[e] + imm
	}
}

func vsubImmR(dst, a []float64, imm float64) {
	n := len(dst)
	a = a[:n]
	e := 0
	for ; e+4 <= n; e += 4 {
		d0, d1, d2, d3 := a[e]-imm, a[e+1]-imm, a[e+2]-imm, a[e+3]-imm
		dst[e], dst[e+1], dst[e+2], dst[e+3] = d0, d1, d2, d3
	}
	for ; e < n; e++ {
		dst[e] = a[e] - imm
	}
}

func vsubImmL(dst, a []float64, imm float64) {
	n := len(dst)
	a = a[:n]
	e := 0
	for ; e+4 <= n; e += 4 {
		d0, d1, d2, d3 := imm-a[e], imm-a[e+1], imm-a[e+2], imm-a[e+3]
		dst[e], dst[e+1], dst[e+2], dst[e+3] = d0, d1, d2, d3
	}
	for ; e < n; e++ {
		dst[e] = imm - a[e]
	}
}

func vmulImm(dst, a []float64, imm float64) {
	n := len(dst)
	a = a[:n]
	e := 0
	for ; e+4 <= n; e += 4 {
		d0, d1, d2, d3 := a[e]*imm, a[e+1]*imm, a[e+2]*imm, a[e+3]*imm
		dst[e], dst[e+1], dst[e+2], dst[e+3] = d0, d1, d2, d3
	}
	for ; e < n; e++ {
		dst[e] = a[e] * imm
	}
}

func vdivImmR(dst, a []float64, imm float64) {
	n := len(dst)
	a = a[:n]
	e := 0
	for ; e+4 <= n; e += 4 {
		d0, d1, d2, d3 := a[e]/imm, a[e+1]/imm, a[e+2]/imm, a[e+3]/imm
		dst[e], dst[e+1], dst[e+2], dst[e+3] = d0, d1, d2, d3
	}
	for ; e < n; e++ {
		dst[e] = a[e] / imm
	}
}

func vdivImmL(dst, a []float64, imm float64) {
	n := len(dst)
	a = a[:n]
	e := 0
	for ; e+4 <= n; e += 4 {
		d0, d1, d2, d3 := imm/a[e], imm/a[e+1], imm/a[e+2], imm/a[e+3]
		dst[e], dst[e+1], dst[e+2], dst[e+3] = d0, d1, d2, d3
	}
	for ; e < n; e++ {
		dst[e] = imm / a[e]
	}
}

func vneg(dst, a []float64) {
	n := len(dst)
	a = a[:n]
	e := 0
	for ; e+4 <= n; e += 4 {
		d0, d1, d2, d3 := -a[e], -a[e+1], -a[e+2], -a[e+3]
		dst[e], dst[e+1], dst[e+2], dst[e+3] = d0, d1, d2, d3
	}
	for ; e < n; e++ {
		dst[e] = -a[e]
	}
}

func vmin(dst, a, b []float64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	e := 0
	for ; e+4 <= n; e += 4 {
		d0, d1 := minf(a[e], b[e]), minf(a[e+1], b[e+1])
		d2, d3 := minf(a[e+2], b[e+2]), minf(a[e+3], b[e+3])
		dst[e], dst[e+1], dst[e+2], dst[e+3] = d0, d1, d2, d3
	}
	for ; e < n; e++ {
		dst[e] = minf(a[e], b[e])
	}
}

func vmax(dst, a, b []float64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	e := 0
	for ; e+4 <= n; e += 4 {
		d0, d1 := maxf(a[e], b[e]), maxf(a[e+1], b[e+1])
		d2, d3 := maxf(a[e+2], b[e+2]), maxf(a[e+3], b[e+3])
		dst[e], dst[e+1], dst[e+2], dst[e+3] = d0, d1, d2, d3
	}
	for ; e < n; e++ {
		dst[e] = maxf(a[e], b[e])
	}
}

func vminImm(dst, a []float64, imm float64) {
	n := len(dst)
	a = a[:n]
	e := 0
	for ; e+4 <= n; e += 4 {
		d0, d1 := minf(a[e], imm), minf(a[e+1], imm)
		d2, d3 := minf(a[e+2], imm), minf(a[e+3], imm)
		dst[e], dst[e+1], dst[e+2], dst[e+3] = d0, d1, d2, d3
	}
	for ; e < n; e++ {
		dst[e] = minf(a[e], imm)
	}
}

func vmaxImm(dst, a []float64, imm float64) {
	n := len(dst)
	a = a[:n]
	e := 0
	for ; e+4 <= n; e += 4 {
		d0, d1 := maxf(a[e], imm), maxf(a[e+1], imm)
		d2, d3 := maxf(a[e+2], imm), maxf(a[e+3], imm)
		dst[e], dst[e+1], dst[e+2], dst[e+3] = d0, d1, d2, d3
	}
	for ; e < n; e++ {
		dst[e] = maxf(a[e], imm)
	}
}
