package kernel

import "math"

// These mirror the wrappers in internal/expr exactly: both engines must go
// through the same float64 call sequence for bit-identical results.

func sqrt(x float64) float64   { return math.Sqrt(x) }
func abs(x float64) float64    { return math.Abs(x) }
func exp(x float64) float64    { return math.Exp(x) }
func logf(x float64) float64   { return math.Log(x) }
func pow(x, y float64) float64 { return math.Pow(x, y) }

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
