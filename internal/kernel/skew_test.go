package kernel

import (
	"math"
	"testing"

	"wavefront/internal/dep"
	"wavefront/internal/expr"
	"wavefront/internal/field"
	"wavefront/internal/grid"
)

// skewCase is one recurrence whose dependences rule out span execution, so
// the tape must either run skewed hyperplane diagonals or fall back to the
// scalar interpreter. The reference is the scalar tape itself: both paths
// execute identical per-point arithmetic, so any ordering bug shows up as a
// bit-level mismatch.
type skewCase struct {
	name   string
	rank   int
	udvs   []dep.UDV
	node   expr.Node // recurrence over dst plus a src term
	loop   dep.LoopSpec
	wantCa int
	wantCb int
}

func skewCases() []skewCase {
	dstM := func(dist ...int) expr.Node { return expr.Ref("dst").At(grid.Direction(dist)) }
	add := func(l, r expr.Node) expr.Node { return expr.Binary{Op: expr.Add, L: l, R: r} }
	return []skewCase{
		{
			// The Sweep3D plane restricted to rank 2: unit distances on
			// both axes, carried by the (1,1) diagonal.
			name: "unit diagonal", rank: 2,
			udvs: []dep.UDV{udv(1, 0), udv(0, 1)},
			node: add(add(dstM(-1, 0), dstM(0, -1)), expr.Ref("src")),
			loop: dep.Identity(2), wantCa: 1, wantCb: 1,
		},
		{
			// An anti-diagonal read forces the asymmetric (2,1) hyperplane,
			// exercising the modular-inverse congruence walk (Cb=1 keeps
			// one x-class; Ca=2 halves the run length).
			name: "general coefficients", rank: 2,
			udvs: []dep.UDV{udv(1, 0), udv(0, 1), udv(1, -1)},
			node: add(add(dstM(-1, 0), dstM(0, -1)), add(dstM(-1, 1), expr.Ref("src"))),
			loop: dep.Identity(2), wantCa: 2, wantCb: 1,
		},
		{
			// Swapped coefficients: reading dst[i+1][j-1] gives distance
			// (-1,1), legal under i-descending order, and the normalized
			// plane distances ((1,0) flips to... Dirs[0]=HighToLow flips
			// (−1,1) to (1,1) and (0,1) stays) admit the unit diagonal.
			name: "mixed directions", rank: 2,
			udvs:   []dep.UDV{udv(-1, 0), udv(0, 1), udv(-1, 1)},
			node:   add(add(dstM(1, 0), dstM(0, -1)), add(dstM(1, -1), expr.Ref("src"))),
			loop:   dep.LoopSpec{Perm: []int{0, 1}, Dirs: []grid.LoopDir{grid.HighToLow, grid.LowToHigh}},
			wantCa: 1, wantCb: 1,
		},
		{
			// Rank 3 Sweep3D shape: the outer loop carries dimension 0, the
			// inner pair (1,2) skews.
			name: "rank3 collapse", rank: 3,
			udvs: []dep.UDV{udv(1, 0, 0), udv(0, 1, 0), udv(0, 0, 1)},
			node: add(add(dstM(-1, 0, 0), dstM(0, -1, 0)), add(dstM(0, 0, -1), expr.Ref("src"))),
			loop: dep.Identity(3), wantCa: 1, wantCb: 1,
		},
	}
}

func skewEnv(rank, n int) *expr.MapEnv {
	bounds := grid.Square(rank, -1, n+1)
	env := &expr.MapEnv{
		Arrays: map[string]*field.Field{
			"src": field.MustNew("src", bounds, field.RowMajor),
			"dst": field.MustNew("dst", bounds, field.RowMajor),
		},
		Scalars: map[string]float64{},
	}
	env.Arrays["src"].FillFunc(bounds, func(p grid.Point) float64 {
		v := 0.5
		for d, x := range p {
			v += float64((d+1)*x) * 0.137
		}
		return v
	})
	env.Arrays["dst"].FillFunc(bounds, func(p grid.Point) float64 {
		v := 1.0
		for d, x := range p {
			v += float64((d+2)*x) * 0.071
		}
		return v
	})
	return env
}

// runSkewPair lowers the case twice against two identical environments,
// runs the first Program on its chosen path and the second on the forced
// scalar tape, and returns both dst fields plus the chosen path.
func runSkewPair(t *testing.T, c skewCase, region grid.Region, n int) (*field.Field, *field.Field, Path) {
	t.Helper()
	envA, envB := skewEnv(c.rank, n), skewEnv(c.rank, n)
	prA, err := Lower(c.rank, []*field.Field{envA.Arrays["dst"]}, []expr.Node{c.node}, envA, c.udvs)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	prB, err := Lower(c.rank, []*field.Field{envB.Arrays["dst"]}, []expr.Node{c.node}, envB, c.udvs)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	path := prA.Run(region, c.loop)
	prB.RunScalar(region, c.loop)
	return envA.Arrays["dst"], envB.Arrays["dst"], path
}

// TestSkewedRecurrenceMatchesScalar pins the skewed executor: recurrences
// whose dependence structure forbids spans run as hyperplane diagonals, the
// derived coefficients match the decision table, and every point is
// bit-identical to the scalar tape's in-order execution.
func TestSkewedRecurrenceMatchesScalar(t *testing.T) {
	const n = 13
	for _, c := range skewCases() {
		t.Run(c.name, func(t *testing.T) {
			v := c.loop.Perm[c.rank-1]
			region := grid.Square(c.rank, 0, n)
			envP := skewEnv(c.rank, n)
			pr, err := Lower(c.rank, []*field.Field{envP.Arrays["dst"]}, []expr.Node{c.node}, envP, c.udvs)
			if err != nil {
				t.Fatalf("Lower: %v", err)
			}
			if pr.SpanOK(v) {
				t.Fatalf("case is spannable along %d; it does not exercise the skew path", v)
			}
			if got := pr.SkewRunLen(region, c.loop); got <= 0 {
				t.Fatalf("SkewRunLen = %d, want > 0", got)
			}
			got, want, path := runSkewPair(t, c, region, n)
			if path != PathSkewed {
				t.Fatalf("Run took %v, want skewed", path)
			}
			mismatch := 0
			region.Each(nil, func(p grid.Point) {
				if math.Float64bits(got.At(p)) != math.Float64bits(want.At(p)) && mismatch == 0 {
					mismatch++
					t.Errorf("at %v: skewed %v != scalar %v", p, got.At(p), want.At(p))
				}
			})
		})
	}
}

// TestSkewedDegenerateRegions covers the clipping edge cases: one-wide
// regions in either plane dimension (every wave is a length-1 run), a
// single point, and an empty region (no execution at all).
func TestSkewedDegenerateRegions(t *testing.T) {
	c := skewCases()[0]
	shapes := []struct {
		name string
		dims []grid.Range
	}{
		{"one-wide inner", []grid.Range{{Lo: 0, Hi: 9, Stride: 1}, {Lo: 4, Hi: 4, Stride: 1}}},
		{"one-wide outer", []grid.Range{{Lo: 4, Hi: 4, Stride: 1}, {Lo: 0, Hi: 9, Stride: 1}}},
		{"single point", []grid.Range{{Lo: 3, Hi: 3, Stride: 1}, {Lo: 5, Hi: 5, Stride: 1}}},
		{"empty", []grid.Range{{Lo: 3, Hi: 2, Stride: 1}, {Lo: 0, Hi: 9, Stride: 1}}},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			region := grid.MustRegion(sh.dims...)
			got, want, path := runSkewPair(t, c, region, 11)
			if !region.Dim(0).Empty() && !region.Dim(1).Empty() && path != PathSkewed {
				t.Fatalf("Run took %v, want skewed", path)
			}
			if d := got.MaxAbsDiff(grid.Square(2, -1, 12), want); d != 0 {
				t.Errorf("skewed differs from scalar by %g (whole storage, degenerate region %v)", d, region)
			}
		})
	}
}

// TestSkewedStridedFallsBack pins the legality gate: the skew addressing
// assumes element-unit distances on both plane dimensions, so a strided
// region must take the scalar tape instead, and still match it bit for bit.
func TestSkewedStridedFallsBack(t *testing.T) {
	c := skewCases()[0]
	region := grid.MustRegion(grid.Range{Lo: 0, Hi: 10, Stride: 2}, grid.Range{Lo: 0, Hi: 10, Stride: 1})
	got, want, path := runSkewPair(t, c, region, 11)
	if path != PathScalar {
		t.Fatalf("strided region took %v, want scalar fallback", path)
	}
	if d := got.MaxAbsDiff(region, want); d != 0 {
		t.Errorf("fallback differs from scalar by %g", d)
	}
}

// TestSkewedNoLegalSkewFallsBack: when the UDV set admits no positive
// hyperplane the run must take the scalar path (and SkewRunLen must report
// 0, which is what the profitability gate consults).
func TestSkewedNoLegalSkewFallsBack(t *testing.T) {
	c := skewCase{
		rank: 2,
		// The mirrored anti-diagonal pair refuses every candidate. The
		// expression itself is a plain stencil; only the declared UDVs
		// drive path selection.
		udvs: []dep.UDV{udv(0, 1), udv(1, -1), udv(-1, 1)},
		node: expr.Binary{Op: expr.Add, L: expr.Ref("src"), R: expr.Const(2)},
		loop: dep.Identity(2),
	}
	region := grid.Square(2, 0, 11)
	envP := skewEnv(2, 11)
	pr, err := Lower(2, []*field.Field{envP.Arrays["dst"]}, []expr.Node{c.node}, envP, c.udvs)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	if got := pr.SkewRunLen(region, c.loop); got != 0 {
		t.Fatalf("SkewRunLen = %d, want 0 with no legal skew", got)
	}
	got, want, path := runSkewPair(t, c, region, 11)
	if path != PathScalar {
		t.Fatalf("Run took %v, want scalar fallback", path)
	}
	if d := got.MaxAbsDiff(region, want); d != 0 {
		t.Errorf("fallback differs from scalar by %g", d)
	}
}

// TestSkewedZeroAlloc locks in the steady-state allocation contract for the
// skewed path: after the first run (which leases registers and caches the
// derived skew) further runs allocate nothing.
func TestSkewedZeroAlloc(t *testing.T) {
	c := skewCases()[1] // general (2,1) coefficients
	const n = 24
	env := skewEnv(c.rank, n)
	pr, err := Lower(c.rank, []*field.Field{env.Arrays["dst"]}, []expr.Node{c.node}, env, c.udvs)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	region := grid.Square(c.rank, 0, n)
	if path := pr.Run(region, c.loop); path != PathSkewed { // warm: lease + skew cache
		t.Fatalf("Run took %v, want skewed", path)
	}
	if a := testing.AllocsPerRun(10, func() { pr.Run(region, c.loop) }); a != 0 {
		t.Errorf("steady-state skewed run allocates %.0f times, want 0", a)
	}
}
