package wavefront_test

// Crash-recovery drill on the Smith-Waterman family: the chaosspec
// "recover" schedule crashes a rank mid-fill, the run must complete via
// restart-from-snapshot, and both the filled tables AND the data-dependent
// traceback must match the straight-Go oracle exactly. The tables carry
// running maxima, so a restart that replayed from a stale snapshot would
// silently shift the alignment — the traceback comparison is what makes
// that visible.

import (
	"bytes"
	"testing"

	"wavefront"
	"wavefront/internal/chaosspec"
	"wavefront/internal/field"
	"wavefront/internal/scan"
	"wavefront/internal/workload"
)

func TestSWCrashRecoveryBitIdentical(t *testing.T) {
	const n, procs, block = 48, 4, 6
	for _, sched := range []struct {
		name    string
		sched   wavefront.Scheduler
		workers int
	}{
		{"static", wavefront.SchedStatic, 0},
		{"taskdag", wavefront.SchedTaskDAG, 2},
	} {
		t.Run(sched.name, func(t *testing.T) {
			w, err := workload.NewSW(n, 7, field.RowMajor)
			if err != nil {
				t.Fatal(err)
			}
			ref := w.Reference()
			refEnd, refOps := w.TracebackOf(ref)

			rules, err := chaosspec.Rules("recover", scan.Scheduler(sched.sched))
			if err != nil {
				t.Fatal(err)
			}
			inj, err := wavefront.NewFaultInjector(wavefront.FaultPlan{Rules: rules})
			if err != nil {
				t.Fatal(err)
			}
			tr := wavefront.NewTraceRecorder(procs)
			_, err = wavefront.RunPipelined(w.Block(), w.Env, wavefront.Pipeline{
				Procs: procs, Block: block,
				Faults:     inj,
				Trace:      tr,
				Scheduler:  sched.sched,
				Workers:    sched.workers,
				Checkpoint: &wavefront.Checkpoint{Every: 2},
			})
			if err != nil {
				t.Fatalf("crash did not recover: %v", err)
			}
			if inj.Fired() == 0 {
				t.Fatal("crash rule never fired; the run proves nothing")
			}
			for _, name := range []string{"s", "e", "f"} {
				if d := w.Env.Arrays[name].MaxAbsDiff(w.All, ref[name]); d != 0 {
					t.Fatalf("recovered %s diverged from the oracle by %g", name, d)
				}
			}
			end, ops := w.Traceback()
			if end[0] != refEnd[0] || end[1] != refEnd[1] || !bytes.Equal(ops, refOps) {
				t.Fatal("recovered run's traceback diverged from the oracle")
			}
			restores := 0
			for _, ev := range tr.Events() {
				if ev.Rank == 1 && ev.Kind.String() == "restore" {
					restores++
				}
			}
			if restores == 0 {
				t.Fatal("no restore event traced on the crashed rank")
			}
		})
	}
}
