// Zpldemo: the paper's programs written in the mini-ZPL language itself —
// the Tomcatv fragment of Figure 2(b) with a scan block and the prime
// operator, next to the Figure 3 semantics demonstration. The sources are
// analyzed (WSV, legality, loop structure) and then executed.
//
//	go run ./examples/zpldemo
package main

import (
	"fmt"
	"log"
	"os"

	"wavefront/internal/zpl"
)

const fig3Src = `
-- Figure 3 of the paper: the prime operator turns an anti-dependence
-- into a loop-carried true dependence.
const n = 5;
region All = [1..n, 1..n];
direction north = [-1, 0];
var a, b : [All] double;

[All] begin
  a := 1;
  b := 1;
end;

[2..n, 1..n] a := 2 * a@north;   -- rows become 2 (reads original values)
[2..n, 1..n] b := 2 * b'@north;  -- rows double cumulatively: 2, 4, 8, 16

writeln("a (unprimed):", a);
writeln("b (primed):", b);
`

const tomcatvSrc = `
-- The Tomcatv wavefront fragment of Figure 2(b).
const n = 10;
region All  = [1..n, 1..n];
region Wave = [2..n-2, 2..n-1];
direction north = [-1, 0];
var r, aa, d, dd, rx, ry : [All] double;

[All] begin
  aa := 0.4;
  dd := 4.0;
  d  := 1.0;
  rx := 2.0;
  ry := 3.0;
  r  := 0.0;
end;

[Wave] scan
  r  := aa * d'@north;
  d  := 1.0 / (dd - aa@north * r);
  rx := rx - rx'@north * r;
  ry := ry - ry'@north * r;
end;

writeln("d after the forward sweep:", d);
`

func main() {
	for _, demo := range []struct {
		name, src string
	}{
		{"figure 3", fig3Src},
		{"tomcatv fragment", tomcatvSrc},
	} {
		fmt.Printf("=== %s ===\n", demo.name)
		prog, err := zpl.Parse(demo.src)
		if err != nil {
			log.Fatal(err)
		}
		it := zpl.New(zpl.Options{})
		reports, err := it.Analyze(prog)
		if err != nil {
			log.Fatal(err)
		}
		for _, rep := range reports {
			if rep.Kind.String() == "scan" || len(rep.Analysis.PrimedDirs) > 0 {
				fmt.Printf("%s %s block over %v: WSV %v, loop %s\n",
					rep.Pos, rep.Kind, rep.Region, rep.Analysis.WSV, rep.Analysis.Loop)
			}
		}
		fmt.Println("--- output ---")
		run := zpl.New(zpl.Options{Out: os.Stdout})
		if err := run.Run(prog); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
