// Session: run the whole Tomcatv iteration — parallel stencils, both
// wavefront sweeps, and a convergence reduction — across a persistent
// decomposition, the way the paper's parallel benchmarks ran. Arrays
// scatter once, halos are exchanged lazily, wavefronts pipeline in both
// directions, and the block size comes from Equation (1) with probed
// machine parameters.
//
//	go run ./examples/session [-n 48] [-p 4] [-iters 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"wavefront/internal/expr"
	"wavefront/internal/field"
	"wavefront/internal/pipeline"
	"wavefront/internal/scan"
	"wavefront/internal/workload"
)

func main() {
	var (
		n     = flag.Int("n", 48, "problem size")
		p     = flag.Int("p", 4, "ranks")
		iters = flag.Int("iters", 5, "iterations")
	)
	flag.Parse()

	// Pick the pipeline block width from Equation (1) using probed
	// communication costs — the paper's proposed dynamic selection.
	alpha, beta, err := pipeline.Probe(100)
	if err != nil {
		log.Fatal(err)
	}
	b, err := pipeline.ChooseBlock(*n, *p, alpha, beta, 10e-9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probed alpha=%.3gs beta=%.3gs/elem -> block width b=%d\n\n", alpha, beta, b)

	w, err := workload.NewTomcatv(*n, field.ColMajor)
	if err != nil {
		log.Fatal(err)
	}
	blocks := w.Blocks()
	sess, err := pipeline.NewSession(w.Env, blocks, pipeline.SessionConfig{
		Procs: *p, Domain: w.All, Block: b,
	})
	if err != nil {
		log.Fatal(err)
	}

	absRx := expr.Call{Fn: expr.Abs, Args: []expr.Node{expr.Ref("rx")}}
	absRy := expr.Call{Fn: expr.Abs, Args: []expr.Node{expr.Ref("ry")}}
	fmt.Println("iter   residual (all-reduced across ranks)")
	err = sess.Run(func(r *pipeline.Rank) error {
		for i := 1; i <= *iters; i++ {
			for _, blk := range blocks {
				if err := r.Exec(blk); err != nil {
					return err
				}
			}
			vx, err := r.Reduce(scan.MaxReduce, w.Interior, absRx)
			if err != nil {
				return err
			}
			vy, err := r.Reduce(scan.MaxReduce, w.Interior, absRy)
			if err != nil {
				return err
			}
			if r.ID() == 0 {
				fmt.Printf("%4d   %.6f\n", i, math.Max(vx, vy))
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	st := sess.Stats()
	fmt.Printf("\n%d ranks, %d iterations: %d messages, %d elements moved, %v elapsed\n",
		*p, *iters, st.Comm.Messages, st.Comm.Elements, st.Elapsed)

	// Verify against serial execution.
	ref, _ := workload.NewTomcatv(*n, field.ColMajor)
	for i := 0; i < *iters; i++ {
		if _, err := ref.Step(); err != nil {
			log.Fatal(err)
		}
	}
	worst := 0.0
	for _, name := range workload.TomcatvArrays {
		if d := w.Env.Arrays[name].MaxAbsDiff(w.All, ref.Env.Arrays[name]); d > worst {
			worst = d
		}
	}
	fmt.Printf("max deviation from serial execution: %g\n", worst)
}
