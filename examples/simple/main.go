// Simple: a SIMPLE-style Lagrangian hydrodynamics step — an explicit hydro
// phase (fully parallel stencils) followed by a heat-conduction solve whose
// forward and backward sweeps are wavefronts. The example steps the
// simulation and then runs both sweeps through the pipelined runtime.
//
//	go run ./examples/simple [-n 64] [-steps 10] [-p 4] [-b 8]
package main

import (
	"flag"
	"fmt"
	"log"

	"wavefront/internal/field"
	"wavefront/internal/pipeline"
	"wavefront/internal/scan"
	"wavefront/internal/workload"
)

func main() {
	var (
		n     = flag.Int("n", 64, "problem size")
		steps = flag.Int("steps", 10, "time steps")
		p     = flag.Int("p", 4, "ranks for the pipelined sweeps")
		b     = flag.Int("b", 8, "pipeline block width (0 = naive)")
	)
	flag.Parse()

	s, err := workload.NewSimple(*n, field.ColMajor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("step   total energy")
	for i := 1; i <= *steps; i++ {
		e, err := s.Step()
		if err != nil {
			log.Fatal(err)
		}
		if i <= 3 || i == *steps || i%5 == 0 {
			fmt.Printf("%4d   %.6f\n", i, e)
		}
	}

	// Pipeline both conduction sweeps and verify against serial execution.
	serial, _ := workload.NewSimple(*n, field.ColMajor)
	par, _ := workload.NewSimple(*n, field.ColMajor)
	prep := func(w *workload.Simple) {
		for _, blk := range w.HydroBlocks() {
			if err := scan.Exec(blk, w.Env, scan.ExecOptions{}); err != nil {
				log.Fatal(err)
			}
		}
		if err := scan.Exec(w.ConductionSetupBlock(), w.Env, scan.ExecOptions{}); err != nil {
			log.Fatal(err)
		}
	}
	prep(serial)
	prep(par)

	if err := scan.Exec(serial.ForwardSweepBlock(), serial.Env, scan.ExecOptions{}); err != nil {
		log.Fatal(err)
	}
	fstats, err := pipeline.Run(par.ForwardSweepBlock(), par.Env, pipeline.DefaultConfig(*p, *b))
	if err != nil {
		log.Fatal(err)
	}
	if err := scan.Exec(serial.BackwardSweepBlock(), serial.Env, scan.ExecOptions{}); err != nil {
		log.Fatal(err)
	}
	bstats, err := pipeline.Run(par.BackwardSweepBlock(), par.Env, pipeline.DefaultConfig(*p, *b))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nforward sweep (north->south):  %d messages, pipelined arrays %v\n",
		fstats.Comm.Messages, fstats.Pipelined)
	fmt.Printf("backward sweep (south->north): %d messages, pipelined arrays %v\n",
		bstats.Comm.Messages, bstats.Pipelined)
	for _, name := range workload.SimpleArrays {
		if d := par.Env.Arrays[name].MaxAbsDiff(par.All, serial.Env.Arrays[name]); d != 0 {
			log.Fatalf("%s differs by %g", name, d)
		}
	}
	fmt.Println("both pipelined sweeps match serial execution exactly.")
}
