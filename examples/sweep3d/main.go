// Sweep3d: a discrete-ordinates transport sweep in the style of the ASCI
// SWEEP3D benchmark. Each octant's wavefront travels from one corner of the
// domain to the opposite one; the same one-statement scan block serves all
// octants, with only the primed directions changing — the point of the
// language-based approach.
//
//	go run ./examples/sweep3d [-n 32] [-rank 2] [-p 4] [-b 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"wavefront/internal/dep"
	"wavefront/internal/field"
	"wavefront/internal/pipeline"
	"wavefront/internal/scan"
	"wavefront/internal/workload"
)

func main() {
	var (
		n    = flag.Int("n", 32, "domain edge length")
		rank = flag.Int("rank", 2, "2 for four octants, 3 for eight")
		p    = flag.Int("p", 4, "ranks for the pipelined octant")
		b    = flag.Int("b", 4, "pipeline block width")
	)
	flag.Parse()

	s, err := workload.NewSweep(*n, *rank, field.RowMajor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d-D sweep over %d octants; statement per octant:\n", *rank, len(s.Octants()))
	for i, dirs := range s.Octants() {
		blk := s.OctantBlock(dirs)
		an, err := scan.Analyze(blk, dep.Preference{PreferLow: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  octant %d: %s  WSV %v  loop %s\n", i, blk.Stmts[0], an.WSV, an.Loop)
	}

	total, err := s.SweepAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflux total after all octants: %.4f\n", total)

	// Run the first octant pipelined and verify.
	serial, _ := workload.NewSweep(*n, *rank, field.RowMajor)
	par, _ := workload.NewSweep(*n, *rank, field.RowMajor)
	dirs := serial.Octants()[0]
	if err := scan.Exec(serial.OctantBlock(dirs), serial.Env, scan.ExecOptions{}); err != nil {
		log.Fatal(err)
	}
	stats, err := pipeline.Run(par.OctantBlock(dirs), par.Env, pipeline.DefaultConfig(*p, *b))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("octant 0 pipelined: wavefront dim %d, tile dim %d, %d tiles, %d messages\n",
		stats.WavefrontDim, stats.TileDim, stats.Tiles, stats.Comm.Messages)
	if d := par.Env.Arrays["flux"].MaxAbsDiff(par.Inner, serial.Env.Arrays["flux"]); d != 0 {
		log.Fatalf("pipelined octant differs by %g", d)
	}
	fmt.Println("pipelined octant matches serial execution exactly.")
}
