// Tomcatv: the SPECfp92 mesh-generation benchmark whose forward/backward
// solver sweeps are the paper's flagship wavefronts (Figures 1 and 2). The
// example runs full iterations, then executes one forward sweep through the
// pipelined parallel runtime and reports its communication profile.
//
//	go run ./examples/tomcatv [-n 64] [-iters 10] [-p 4] [-b 8]
package main

import (
	"flag"
	"fmt"
	"log"

	"wavefront/internal/dep"
	"wavefront/internal/field"
	"wavefront/internal/pipeline"
	"wavefront/internal/scan"
	"wavefront/internal/workload"
)

func main() {
	var (
		n     = flag.Int("n", 64, "problem size")
		iters = flag.Int("iters", 10, "iterations")
		p     = flag.Int("p", 4, "ranks for the pipelined sweep")
		b     = flag.Int("b", 8, "pipeline block width (0 = naive)")
	)
	flag.Parse()

	t, err := workload.NewTomcatv(*n, field.ColMajor)
	if err != nil {
		log.Fatal(err)
	}

	fwd := t.ForwardBlock()
	an, err := scan.Analyze(fwd, dep.Preference{PreferLow: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("forward sweep scan block:")
	for _, s := range fwd.Stmts {
		fmt.Println("   ", s)
	}
	fmt.Printf("WSV %v -> dim 0 pipelines, dim 1 is fully parallel; loop %s\n\n", an.WSV, an.Loop)

	fmt.Println("iter   residual")
	for i := 1; i <= *iters; i++ {
		r, err := t.Step()
		if err != nil {
			log.Fatal(err)
		}
		if i <= 3 || i == *iters || i%5 == 0 {
			fmt.Printf("%4d   %.6f\n", i, r)
		}
	}

	// Re-run the forward sweep pipelined and compare against serial.
	serial, _ := workload.NewTomcatv(*n, field.ColMajor)
	par, _ := workload.NewTomcatv(*n, field.ColMajor)
	if err := scan.Exec(serial.ForwardBlock(), serial.Env, scan.ExecOptions{}); err != nil {
		log.Fatal(err)
	}
	stats, err := pipeline.Run(par.ForwardBlock(), par.Env, pipeline.DefaultConfig(*p, *b))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npipelined forward sweep: p=%d b=%d -> %d tiles, %d messages, %d elements moved\n",
		stats.Procs, stats.Block, stats.Tiles, stats.Comm.Messages, stats.Comm.Elements)
	fmt.Printf("pipelined arrays (halo depths): %v\n", stats.Pipelined)
	for _, name := range workload.TomcatvArrays {
		if d := par.Env.Arrays[name].MaxAbsDiff(par.All, serial.Env.Arrays[name]); d != 0 {
			log.Fatalf("%s differs by %g", name, d)
		}
	}
	fmt.Println("parallel sweep matches the serial sweep exactly.")
}
