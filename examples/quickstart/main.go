// Quickstart: express a wavefront computation with the prime operator,
// check its legality, run it serially, then run it pipelined across ranks
// and confirm the results match.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wavefront/internal/dep"
	"wavefront/internal/expr"
	"wavefront/internal/field"
	"wavefront/internal/grid"
	"wavefront/internal/pipeline"
	"wavefront/internal/scan"
)

func main() {
	const n = 8
	// Storage covers [0..n, 1..n] so that @north reads stay in bounds; the
	// computation covers [1..n, 1..n].
	bounds := grid.MustRegion(grid.NewRange(0, n), grid.NewRange(1, n))
	region := grid.MustRegion(grid.NewRange(1, n), grid.NewRange(1, n))

	mkEnv := func() *expr.MapEnv {
		env := &expr.MapEnv{Arrays: map[string]*field.Field{
			"a": field.MustNew("a", bounds, field.RowMajor),
		}}
		env.Arrays["a"].Fill(1)
		return env
	}

	// The paper's Figure 3(d): a := 2 * a'@north. The primed reference
	// demands a loop-carried true dependence — a wavefront from north to
	// south.
	block := scan.NewScan(region, scan.Stmt{
		LHS: expr.Ref("a"),
		RHS: expr.Binary{Op: expr.Mul, L: expr.Const(2),
			R: expr.Ref("a").AtNamed("north", grid.North).Prime()},
	})

	an, err := scan.Analyze(block, dep.Preference{PreferLow: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("statement:   ", block.Stmts[0])
	fmt.Println("WSV:         ", an.WSV, "(simple:", an.WSV.Simple(), ")")
	fmt.Println("wavefront dims:", an.WavefrontDims())
	fmt.Println("loop:        ", an.Loop)

	serial := mkEnv()
	if err := scan.Exec(block, serial, scan.ExecOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserial result (rows double as the wavefront passes):")
	fmt.Print(serial.Arrays["a"].Format2(region))

	par := mkEnv()
	stats, err := pipeline.Run(block, par, pipeline.DefaultConfig(4, 2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npipelined over %d ranks, block width %d: %d tiles, %d messages (%d elements)\n",
		stats.Procs, stats.Block, stats.Tiles, stats.Comm.Messages, stats.Comm.Elements)
	if d := par.Arrays["a"].MaxAbsDiff(region, serial.Arrays["a"]); d != 0 {
		log.Fatalf("parallel result differs by %g", d)
	}
	fmt.Println("pipelined result is identical to the serial result.")
}
