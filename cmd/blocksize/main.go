// Blocksize is the Equation (1) calculator: given the machine's
// communication costs (alpha, beta, in units of one element's compute
// time), the problem size n, and the processor count p, it prints the
// optimal pipelining block size under Model1 (beta ignored) and Model2,
// and optionally the predicted speedup curve.
//
// Usage:
//
//	blocksize -alpha 1500 -beta 72 -n 256 -p 8 [-curve]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"wavefront/internal/model"
)

func main() {
	var (
		alpha = flag.Float64("alpha", 1500, "per-message startup cost (element times)")
		beta  = flag.Float64("beta", 72, "per-element transmission cost (element times)")
		n     = flag.Float64("n", 256, "problem size (n x n)")
		p     = flag.Float64("p", 8, "processors along the wavefront dimension")
		curve = flag.Bool("curve", false, "print the speedup curve")
	)
	flag.Parse()
	if *n < 2 || *p < 1 || *alpha < 0 || *beta < 0 {
		fmt.Fprintln(os.Stderr, "blocksize: need n >= 2, p >= 1, alpha/beta >= 0")
		os.Exit(2)
	}

	m1 := model.Model1(*alpha)
	m2 := model.Model2(*alpha, *beta)
	b1 := m1.OptimalBlockApprox(*n, *p)
	b2 := m2.OptimalBlock(*n, *p)
	bNum := m2.OptimalBlockNumeric(*n, *p, int(*n))

	fmt.Printf("n=%g p=%g alpha=%g beta=%g\n\n", *n, *p, *alpha, *beta)
	fmt.Printf("Model1 (beta=0, Hiranandani et al.): b = sqrt(alpha) = %.1f\n", b1)
	fmt.Printf("Model2 (Equation 1):                 b = %.1f\n", b2)
	fmt.Printf("exhaustive integer optimum:          b = %d\n\n", bNum)
	fmt.Printf("predicted pipelined time at Model2's b: %.0f (serial %.0f, non-pipelined %.0f)\n",
		m2.TPipe(*n, *p, math.Round(b2)), m2.TSerial(*n), m2.TNonPipe(*n, *p))
	fmt.Printf("predicted speedup over non-pipelined:   %.2f\n", m2.Speedup(*n, *p, math.Round(b2)))

	if *curve {
		fmt.Println("\n  b    Model1   Model2")
		for b := 1; b <= int(*n); b = next(b) {
			fmt.Printf("%4d   %6.2f   %6.2f\n", b,
				m1.Speedup(*n, *p, float64(b)), m2.Speedup(*n, *p, float64(b)))
		}
	}
}

func next(b int) int {
	switch {
	case b < 8:
		return b + 1
	case b < 64:
		return b + 4
	default:
		return b + 32
	}
}
