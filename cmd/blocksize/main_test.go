package main

import (
	"flag"
	"os"
	"testing"
)

// TestMainCurve drives the calculator end to end with the paper's CM-5
// constants, including the speedup curve (which walks next through all
// three stride regimes).
func TestMainCurve(t *testing.T) {
	flag.CommandLine = flag.NewFlagSet("blocksize", flag.ExitOnError)
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"blocksize", "-alpha", "1521", "-beta", "72", "-n", "256", "-p", "8", "-curve"}
	main()
}

func TestNextStride(t *testing.T) {
	for _, tc := range [][2]int{{1, 2}, {7, 8}, {8, 12}, {63, 67}, {64, 96}, {128, 160}} {
		if got := next(tc[0]); got != tc[1] {
			t.Errorf("next(%d) = %d, want %d", tc[0], got, tc[1])
		}
	}
}
