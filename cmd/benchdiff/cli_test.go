package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

const cliBenchOutput = `goos: linux
BenchmarkTileFill-4   	    1000	      1200 ns/op	        14.50 ns/point
BenchmarkDrain-4      	     500	      3400 ns/op
PASS
`

// TestMainSnapshotThenCompare drives the CLI the way CI does: first the
// snapshot-writing invocation (-out), then the guard invocation (-base
// -tolerance -json) against the snapshot it just wrote — which by
// construction has zero regressions and must exit cleanly.
func TestMainSnapshotThenCompare(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	snap := filepath.Join(dir, "snap.json")
	if err := os.WriteFile(in, []byte(cliBenchOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	for _, args := range [][]string{
		{"benchdiff", "-in", in, "-out", snap, "-json"},
		{"benchdiff", "-in", in, "-base", snap, "-tolerance", "25", "-json"},
		{"benchdiff", "-in", in, "-base", snap, "-maxregress", "10"},
	} {
		flag.CommandLine = flag.NewFlagSet("benchdiff", flag.ExitOnError)
		os.Args = args
		main()
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
}
