// Benchdiff turns `go test -bench` output into a JSON snapshot and
// compares snapshots, for the benchmark-guard workflow of EXPERIMENTS.md:
//
//	go test -run - -bench . | go run ./cmd/benchdiff -out BENCH_pr1.json
//	go test -run - -bench . | go run ./cmd/benchdiff -base BENCH_pr1.json -maxregress 25
//
// With -base, any benchmark whose ns/op regressed by more than -maxregress
// percent against the baseline fails the run (exit 1). Benchmarks present
// only on one side are reported but never fail the guard.
//
// -json switches stdout to a machine-readable comparison document (the
// human table moves to stderr) so CI can annotate a failed guard with the
// exact regressing benchmarks:
//
//	go test -run - -bench . | go run ./cmd/benchdiff -base BENCH_pr1.json -json > diff.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the JSON schema: benchmark name (with the -cpu suffix) to
// ns/op.
type Snapshot struct {
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// Delta is one benchmark's comparison row.
type Delta struct {
	Name   string  `json:"name"`
	BaseNs float64 `json:"base_ns,omitempty"`
	CurNs  float64 `json:"cur_ns,omitempty"`
	// DeltaPct is the ns/op change vs the baseline in percent (positive =
	// slower). Omitted for NEW/GONE rows.
	DeltaPct float64 `json:"delta_pct,omitempty"`
	// Status is "ok", "FAIL" (regressed beyond tolerance), "NEW" (no
	// baseline entry), or "GONE" (baseline only).
	Status string `json:"status"`
}

// Comparison is the -json document: the tolerance applied, the verdict,
// the regressing benchmark names, and every per-benchmark row.
type Comparison struct {
	TolerancePct float64  `json:"tolerance_pct"`
	Failed       bool     `json:"failed"`
	Regressions  []string `json:"regressions"`
	Benchmarks   []Delta  `json:"benchmarks"`
}

func main() {
	var (
		out        = flag.String("out", "", "write the parsed snapshot JSON here")
		base       = flag.String("base", "", "baseline snapshot to compare against")
		maxRegress = flag.Float64("maxregress", 20, "max allowed ns/op regression vs -base, percent")
		tolerance  = flag.Float64("tolerance", 0, "alias for -maxregress (CI spelling); takes precedence when set")
		in         = flag.String("in", "", "read benchmark output from this file instead of stdin")
		asJSON     = flag.Bool("json", false, "emit a machine-readable comparison (or, without -base, the snapshot) on stdout; the human table goes to stderr")
	)
	flag.Parse()
	if *tolerance > 0 {
		*maxRegress = *tolerance
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	snap, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(snap.NsPerOp) == 0 {
		fatal(fmt.Errorf("benchdiff: no benchmark lines found in input"))
	}
	if *out != "" {
		if err := os.WriteFile(*out, marshal(snap), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: wrote %d benchmarks to %s\n", len(snap.NsPerOp), *out)
	}
	if *base == "" {
		if *asJSON {
			os.Stdout.Write(marshal(snap))
		}
		return
	}
	buf, err := os.ReadFile(*base)
	if err != nil {
		fatal(err)
	}
	var baseline Snapshot
	if err := json.Unmarshal(buf, &baseline); err != nil {
		fatal(fmt.Errorf("benchdiff: bad baseline %s: %w", *base, err))
	}
	cmp := diff(&baseline, snap, *maxRegress)
	if *asJSON {
		os.Stdout.Write(marshal(cmp))
		render(os.Stderr, cmp)
	} else {
		render(os.Stdout, cmp)
	}
	if cmp.Failed {
		os.Exit(1)
	}
}

func marshal(v any) []byte {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	return append(buf, '\n')
}

// parse extracts "BenchmarkX-N  iters  ns/op" lines from go test output.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{NsPerOp: map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark lines: name, iteration count, value, "ns/op", then
		// optional extra metric pairs.
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad ns/op %q in %q", fields[i], sc.Text())
			}
			snap.NsPerOp[fields[0]] = v
			break
		}
	}
	return snap, sc.Err()
}

// diff builds the per-benchmark comparison against the baseline.
func diff(base, cur *Snapshot, maxRegress float64) *Comparison {
	cmp := &Comparison{TolerancePct: maxRegress, Regressions: []string{}}
	names := make([]string, 0, len(cur.NsPerOp))
	for name := range cur.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		curNs := cur.NsPerOp[name]
		baseNs, ok := base.NsPerOp[name]
		if !ok {
			cmp.Benchmarks = append(cmp.Benchmarks, Delta{Name: name, CurNs: curNs, Status: "NEW"})
			continue
		}
		delta := 100 * (curNs - baseNs) / baseNs
		status := "ok"
		if delta > maxRegress {
			status = "FAIL"
			cmp.Failed = true
			cmp.Regressions = append(cmp.Regressions, name)
		}
		cmp.Benchmarks = append(cmp.Benchmarks, Delta{
			Name: name, BaseNs: baseNs, CurNs: curNs, DeltaPct: delta, Status: status,
		})
	}
	gone := make([]string, 0)
	for name := range base.NsPerOp {
		if _, ok := cur.NsPerOp[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		cmp.Benchmarks = append(cmp.Benchmarks, Delta{Name: name, BaseNs: base.NsPerOp[name], Status: "GONE"})
	}
	return cmp
}

// render prints the human-readable delta table.
func render(w io.Writer, cmp *Comparison) {
	for _, d := range cmp.Benchmarks {
		switch d.Status {
		case "NEW":
			fmt.Fprintf(w, "NEW   %-50s %12.0f ns/op\n", d.Name, d.CurNs)
		case "GONE":
			fmt.Fprintf(w, "GONE  %-50s\n", d.Name)
		default:
			fmt.Fprintf(w, "%-5s %-50s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
				d.Status, d.Name, d.BaseNs, d.CurNs, d.DeltaPct)
		}
	}
	if cmp.Failed {
		fmt.Fprintf(w, "benchdiff: regression beyond %.0f%% detected (%s)\n",
			cmp.TolerancePct, strings.Join(cmp.Regressions, ", "))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
