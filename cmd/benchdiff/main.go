// Benchdiff turns `go test -bench` output into a JSON snapshot and
// compares snapshots, for the benchmark-guard workflow of EXPERIMENTS.md:
//
//	go test -run - -bench . | go run ./cmd/benchdiff -out BENCH_pr1.json
//	go test -run - -bench . | go run ./cmd/benchdiff -base BENCH_pr1.json -maxregress 25
//
// With -base, any benchmark whose ns/op regressed by more than -maxregress
// percent against the baseline fails the run (exit 1). Benchmarks present
// only on one side are reported but never fail the guard.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the JSON schema: benchmark name (with the -cpu suffix) to
// ns/op.
type Snapshot struct {
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

func main() {
	var (
		out        = flag.String("out", "", "write the parsed snapshot JSON here")
		base       = flag.String("base", "", "baseline snapshot to compare against")
		maxRegress = flag.Float64("maxregress", 20, "max allowed ns/op regression vs -base, percent")
		tolerance  = flag.Float64("tolerance", 0, "alias for -maxregress (CI spelling); takes precedence when set")
		in         = flag.String("in", "", "read benchmark output from this file instead of stdin")
	)
	flag.Parse()
	if *tolerance > 0 {
		*maxRegress = *tolerance
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	snap, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(snap.NsPerOp) == 0 {
		fatal(fmt.Errorf("benchdiff: no benchmark lines found in input"))
	}
	if *out != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(snap.NsPerOp), *out)
	}
	if *base == "" {
		return
	}
	buf, err := os.ReadFile(*base)
	if err != nil {
		fatal(err)
	}
	var baseline Snapshot
	if err := json.Unmarshal(buf, &baseline); err != nil {
		fatal(fmt.Errorf("benchdiff: bad baseline %s: %w", *base, err))
	}
	if failed := compare(os.Stdout, &baseline, snap, *maxRegress); failed {
		os.Exit(1)
	}
}

// parse extracts "BenchmarkX-N  iters  ns/op" lines from go test output.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{NsPerOp: map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark lines: name, iteration count, value, "ns/op", then
		// optional extra metric pairs.
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad ns/op %q in %q", fields[i], sc.Text())
			}
			snap.NsPerOp[fields[0]] = v
			break
		}
	}
	return snap, sc.Err()
}

// compare prints a per-benchmark delta table and reports whether any
// benchmark regressed beyond maxRegress percent.
func compare(w io.Writer, base, cur *Snapshot, maxRegress float64) bool {
	names := make([]string, 0, len(cur.NsPerOp))
	for name := range cur.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		curNs := cur.NsPerOp[name]
		baseNs, ok := base.NsPerOp[name]
		if !ok {
			fmt.Fprintf(w, "NEW   %-50s %12.0f ns/op\n", name, curNs)
			continue
		}
		delta := 100 * (curNs - baseNs) / baseNs
		status := "ok"
		if delta > maxRegress {
			status = "FAIL"
			failed = true
		}
		fmt.Fprintf(w, "%-5s %-50s %12.0f -> %12.0f ns/op (%+.1f%%)\n", status, name, baseNs, curNs, delta)
	}
	gone := make([]string, 0)
	for name := range base.NsPerOp {
		if _, ok := cur.NsPerOp[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "GONE  %-50s\n", name)
	}
	if failed {
		fmt.Fprintf(w, "benchdiff: regression beyond %.0f%% detected\n", maxRegress)
	}
	return failed
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
