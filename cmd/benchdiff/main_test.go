package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: wavefront
BenchmarkSerialTomcatv-8   	     100	  11832450 ns/op
BenchmarkPipelineTrace/off-8 	     500	   2501000 ns/op	  120 B/op	 3 allocs/op
BenchmarkPipelineTrace/on-8  	     480	   2600000 ns/op
not a benchmark line
PASS
ok  	wavefront	3.210s
`

func TestParseExtractsNsPerOp(t *testing.T) {
	snap, err := parse(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.NsPerOp) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(snap.NsPerOp), snap.NsPerOp)
	}
	if got := snap.NsPerOp["BenchmarkSerialTomcatv-8"]; got != 11832450 {
		t.Errorf("serial ns/op = %g", got)
	}
	if got := snap.NsPerOp["BenchmarkPipelineTrace/off-8"]; got != 2501000 {
		t.Errorf("sub-benchmark ns/op = %g (extra metric pairs must not confuse parsing)", got)
	}
}

func TestParseRejectsMalformedNsPerOp(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX-8 100 oops ns/op\n")); err == nil {
		t.Error("malformed ns/op parsed without error")
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := &Snapshot{NsPerOp: map[string]float64{"A-8": 100, "B-8": 200}}
	cur := &Snapshot{NsPerOp: map[string]float64{"A-8": 120, "B-8": 190}}
	var sb strings.Builder
	if failed := compare(&sb, base, cur, 25); failed {
		t.Errorf("20%% regression failed a 25%% tolerance:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "+20.0%") {
		t.Errorf("delta not reported:\n%s", sb.String())
	}
}

func TestCompareBeyondToleranceFails(t *testing.T) {
	base := &Snapshot{NsPerOp: map[string]float64{"A-8": 100}}
	cur := &Snapshot{NsPerOp: map[string]float64{"A-8": 140}}
	var sb strings.Builder
	if failed := compare(&sb, base, cur, 25); !failed {
		t.Errorf("40%% regression passed a 25%% tolerance:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "FAIL") {
		t.Errorf("failing row not marked:\n%s", sb.String())
	}
}

func TestCompareNewAndGoneNeverFail(t *testing.T) {
	base := &Snapshot{NsPerOp: map[string]float64{"Old-8": 100}}
	cur := &Snapshot{NsPerOp: map[string]float64{"New-8": 999999}}
	var sb strings.Builder
	if failed := compare(&sb, base, cur, 25); failed {
		t.Errorf("presence-only differences failed the guard:\n%s", sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "NEW") || !strings.Contains(out, "GONE") {
		t.Errorf("NEW/GONE rows missing:\n%s", out)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := &Snapshot{NsPerOp: map[string]float64{"A-8": 100}}
	cur := &Snapshot{NsPerOp: map[string]float64{"A-8": 50}}
	var sb strings.Builder
	if failed := compare(&sb, base, cur, 5); failed {
		t.Errorf("a 2× speedup failed the guard:\n%s", sb.String())
	}
}
