package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: wavefront
BenchmarkSerialTomcatv-8   	     100	  11832450 ns/op
BenchmarkPipelineTrace/off-8 	     500	   2501000 ns/op	  120 B/op	 3 allocs/op
BenchmarkPipelineTrace/on-8  	     480	   2600000 ns/op
not a benchmark line
PASS
ok  	wavefront	3.210s
`

func TestParseExtractsNsPerOp(t *testing.T) {
	snap, err := parse(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.NsPerOp) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(snap.NsPerOp), snap.NsPerOp)
	}
	if got := snap.NsPerOp["BenchmarkSerialTomcatv-8"]; got != 11832450 {
		t.Errorf("serial ns/op = %g", got)
	}
	if got := snap.NsPerOp["BenchmarkPipelineTrace/off-8"]; got != 2501000 {
		t.Errorf("sub-benchmark ns/op = %g (extra metric pairs must not confuse parsing)", got)
	}
}

func TestParseRejectsMalformedNsPerOp(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX-8 100 oops ns/op\n")); err == nil {
		t.Error("malformed ns/op parsed without error")
	}
}

func TestDiffWithinTolerancePasses(t *testing.T) {
	base := &Snapshot{NsPerOp: map[string]float64{"A-8": 100, "B-8": 200}}
	cur := &Snapshot{NsPerOp: map[string]float64{"A-8": 120, "B-8": 190}}
	cmp := diff(base, cur, 25)
	if cmp.Failed {
		t.Errorf("20%% regression failed a 25%% tolerance: %+v", cmp)
	}
	var sb strings.Builder
	render(&sb, cmp)
	if !strings.Contains(sb.String(), "+20.0%") {
		t.Errorf("delta not reported:\n%s", sb.String())
	}
}

func TestDiffBeyondToleranceFails(t *testing.T) {
	base := &Snapshot{NsPerOp: map[string]float64{"A-8": 100}}
	cur := &Snapshot{NsPerOp: map[string]float64{"A-8": 140}}
	cmp := diff(base, cur, 25)
	if !cmp.Failed {
		t.Errorf("40%% regression passed a 25%% tolerance: %+v", cmp)
	}
	if len(cmp.Regressions) != 1 || cmp.Regressions[0] != "A-8" {
		t.Errorf("regression list = %v, want [A-8]", cmp.Regressions)
	}
	var sb strings.Builder
	render(&sb, cmp)
	if !strings.Contains(sb.String(), "FAIL") {
		t.Errorf("failing row not marked:\n%s", sb.String())
	}
}

func TestDiffNewAndGoneNeverFail(t *testing.T) {
	base := &Snapshot{NsPerOp: map[string]float64{"Old-8": 100}}
	cur := &Snapshot{NsPerOp: map[string]float64{"New-8": 999999}}
	cmp := diff(base, cur, 25)
	if cmp.Failed {
		t.Errorf("presence-only differences failed the guard: %+v", cmp)
	}
	var sb strings.Builder
	render(&sb, cmp)
	out := sb.String()
	if !strings.Contains(out, "NEW") || !strings.Contains(out, "GONE") {
		t.Errorf("NEW/GONE rows missing:\n%s", out)
	}
}

func TestDiffImprovementPasses(t *testing.T) {
	base := &Snapshot{NsPerOp: map[string]float64{"A-8": 100}}
	cur := &Snapshot{NsPerOp: map[string]float64{"A-8": 50}}
	if cmp := diff(base, cur, 5); cmp.Failed {
		t.Errorf("a 2× speedup failed the guard: %+v", cmp)
	}
}

func TestDiffJSONDocument(t *testing.T) {
	base := &Snapshot{NsPerOp: map[string]float64{"A-8": 100, "Old-8": 10}}
	cur := &Snapshot{NsPerOp: map[string]float64{"A-8": 140, "New-8": 5}}
	cmp := diff(base, cur, 25)
	var decoded Comparison
	if err := json.Unmarshal(marshal(cmp), &decoded); err != nil {
		t.Fatalf("-json document does not round-trip: %v", err)
	}
	if !decoded.Failed || decoded.TolerancePct != 25 {
		t.Errorf("verdict mangled: %+v", decoded)
	}
	if len(decoded.Benchmarks) != 3 {
		t.Errorf("document has %d rows, want 3 (ok/FAIL + NEW + GONE): %+v", len(decoded.Benchmarks), decoded.Benchmarks)
	}
	statuses := map[string]string{}
	for _, d := range decoded.Benchmarks {
		statuses[d.Name] = d.Status
	}
	if statuses["A-8"] != "FAIL" || statuses["New-8"] != "NEW" || statuses["Old-8"] != "GONE" {
		t.Errorf("row statuses = %v", statuses)
	}
}
