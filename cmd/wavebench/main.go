// Wavebench regenerates the paper's figures and tables.
//
// Usage:
//
//	wavebench -list
//	wavebench -exp fig5a
//	wavebench -exp all [-quick]
//
// Each experiment prints the series the corresponding paper artifact
// reports; EXPERIMENTS.md records the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wavefront/internal/exp"
)

func main() {
	var (
		id    = flag.String("exp", "all", "experiment id, or 'all'")
		quick = flag.Bool("quick", false, "shrink problem sizes (for smoke runs)")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, eid := range exp.IDs() {
			title, _ := exp.Title(eid)
			fmt.Printf("%-12s %s\n", eid, title)
		}
		return
	}

	ids := []string{*id}
	if *id == "all" {
		ids = exp.IDs()
	}
	failed := false
	for _, eid := range ids {
		r, err := exp.Run(eid, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("=== %s: %s ===\n", r.ID, r.Title)
		if r.Err != nil {
			fmt.Printf("FAILED: %v\n\n", r.Err)
			failed = true
			continue
		}
		fmt.Println(strings.TrimRight(r.Text, "\n"))
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}
