// Wavebench regenerates the paper's figures and tables.
//
// Usage:
//
//	wavebench -list
//	wavebench -exp fig5a
//	wavebench -exp all [-quick]
//	wavebench -trace out.json [-procs 4] [-block 16] [-n 128] [-link-cap 4]
//	wavebench -chaos all [-procs 4] [-block 16] [-n 64] [-seed 1]
//
// Each experiment prints the series the corresponding paper artifact
// reports; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// The -trace mode runs the Tomcatv forward-elimination wavefront pipelined
// across -procs ranks with tile width -block, prints the per-rank
// busy/wait/comm summary, validates the recorded schedule against the
// wavefront safety invariant, and writes a Chrome trace-event JSON file
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// The -chaos mode exercises the fault-tolerant runtime: it injects a seeded
// fault scenario (drop, corrupt, stall, crash, delay, backpressure,
// recover, recover-multi, or all) into the same workload and verifies the
// run ends with the predicted diagnosis instead of hanging. The recovery
// scenarios crash ranks at pinned waves with checkpointing on (-ckpt-every)
// and demand the restarted run complete bit-identical to the serial oracle.
// -link-cap bounds every comm link so senders feel backpressure (0 =
// unbounded); it applies to -trace and -chaos runs. -transport selects how
// messages travel between ranks (in-process channels, loopback TCP, or unix
// sockets) for the -chaos scenarios.
//
// -critpath adds the cross-rank critical-path decomposition to a -trace
// run: the longest causal chain through the recorded events, its
// compute/comm/wait split, and where it crosses ranks. -postmortem DIR arms
// the flight recorder for -trace, -chaos, and -serve runs: structured
// failures (and, for -trace, the completed run) capture a checksummed JSON
// bundle — trace tail, metrics, wait-for graph, checkpoint metadata, run
// config, critical path — into DIR.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"wavefront"
	"wavefront/internal/critpath"
	"wavefront/internal/exp"
	"wavefront/internal/field"
	"wavefront/internal/workload"
)

// errCheckFailed marks a run whose setup succeeded but whose checked
// property did not hold (schedule validation, chaos prediction, dropped
// trace events). Those exit 1; setup and usage errors exit 2, so CI can
// tell "the workload misbehaved" from "the tool was invoked wrong".
var errCheckFailed = errors.New("check failed")

func main() {
	var (
		id        = flag.String("exp", "all", "experiment id, or 'all'")
		quick     = flag.Bool("quick", false, "shrink problem sizes (for smoke runs)")
		list      = flag.Bool("list", false, "list experiments and exit")
		traceOut  = flag.String("trace", "", "record a traced pipeline run and write Chrome trace JSON to this file")
		procs     = flag.Int("procs", 4, "ranks for -trace, -chaos, and -serve")
		blockSize = flag.Int("block", 16, "tile width for -trace, -chaos, and -serve (0 = naive)")
		n         = flag.Int("n", 128, "problem size for -trace, -chaos, and -serve")
		chaos     = flag.String("chaos", "", "inject a fault scenario (drop|corrupt|stall|crash|delay|backpressure|recover|recover-multi|all)")
		linkCap   = flag.Int("link-cap", 0, "bound every comm link to this many queued messages (0 = unbounded)")
		seed      = flag.Int64("seed", 1, "fault-plan seed for -chaos")
		transp    = flag.String("transport", "chan", "message transport: chan (in-process), tcp, or unix (loopback sockets)")
		ckptEvery = flag.Int("ckpt-every", 2, "snapshot interval in waves for the -chaos recovery scenarios")
		serve     = flag.String("serve", "", "serve live metrics at this address (e.g. :8080) while looping the workload")
		watch     = flag.Bool("watch", false, "print a periodic one-line live summary while looping the workload")
		duration  = flag.Duration("duration", 0, "stop the -serve/-watch workload loop after this long (0 = until interrupted)")
		pool      = flag.Bool("pool", false, "reuse message buffers across waves (zero-alloc steady state) in the workload loop")
		autotune  = flag.Bool("autotune", false, "let the drift monitor retune the tile width between workload-loop runs")
		kernelSel = flag.String("kernel", "tape", "kernel execution engine: tape (span and skewed-run instruction tapes), closure (per-point reference path), or scalar (forced per-point tape baseline)")
		schedSel  = flag.String("sched", "static", "tile scheduler: static (pipeline schedule) or taskdag (work-stealing tile DAG)")
		workers   = flag.Int("workers", 0, "task-DAG pool size per rank for -sched=taskdag (0 = GOMAXPROCS)")
		critPathF = flag.Bool("critpath", false, "print the cross-rank critical-path decomposition after a -trace run")
		postmort  = flag.String("postmortem", "", "arm the flight recorder: write post-mortem bundles into this directory (with -trace, -chaos, or -serve)")
		validate  = flag.Bool("validate", false, "run Tomcatv/SIMPLE/Sweep3D under both engines and both schedulers, serial and pipelined, and exit nonzero on any bit-level disagreement")
		speedup   = flag.Bool("speedup", false, "time the Tomcatv forward wavefront under -sched=taskdag at 1 worker vs -workers workers and report the wall-clock ratio")
	)
	flag.Parse()

	if *list {
		for _, eid := range exp.IDs() {
			title, _ := exp.Title(eid)
			fmt.Printf("%-12s %s\n", eid, title)
		}
		return
	}

	exitOn := func(err error) {
		if err == nil {
			return
		}
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, errCheckFailed) {
			os.Exit(1)
		}
		os.Exit(2)
	}

	engine, err := parseEngine(*kernelSel)
	exitOn(err)
	sched, err := wavefront.ParseScheduler(*schedSel)
	exitOn(err)
	tkind, err := wavefront.ParseTransport(*transp)
	exitOn(err)
	tcfg := wavefront.TransportConfig{Kind: tkind}

	if *validate {
		exitOn(runValidate(*n, *blockSize))
		return
	}

	if *speedup {
		exitOn(runSpeedup(*n, *blockSize, *workers))
		return
	}

	if *serve != "" || *watch {
		exitOn(runLive(*serve, *watch, *procs, *blockSize, *n, *duration, *pool, *autotune, engine, sched, *workers, *postmort))
		return
	}

	if *chaos != "" {
		exitOn(runChaos(*chaos, *procs, *blockSize, *n, *linkCap, *seed, sched, *workers, tcfg, *ckptEvery, *postmort))
		return
	}

	if *traceOut != "" {
		exitOn(runTraced(*traceOut, *procs, *blockSize, *n, *linkCap, engine, sched, *workers, *critPathF, *postmort))
		return
	}

	ids := []string{*id}
	if *id == "all" {
		ids = exp.IDs()
	}
	failed := false
	for _, eid := range ids {
		r, err := exp.Run(eid, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("=== %s: %s ===\n", r.ID, r.Title)
		if r.Err != nil {
			fmt.Printf("FAILED: %v\n\n", r.Err)
			failed = true
			continue
		}
		fmt.Println(strings.TrimRight(r.Text, "\n"))
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

// runTraced pipelines the Tomcatv forward elimination across ranks with
// tracing on, prints the summary, validates the schedule, and writes the
// Chrome trace. Under -sched=taskdag the recorder carries procs*(1+workers)
// rings so every DAG worker's tile spans land in the trace and the
// validator replays the dynamic schedule too.
func runTraced(path string, procs, block, n, linkCap int, engine wavefront.KernelEngine, sched wavefront.Scheduler, workers int, doCritPath bool, pmDir string) error {
	t, err := workload.NewTomcatv(n, field.RowMajor)
	if err != nil {
		return err
	}
	rings, wtr := procs, 0
	if sched == wavefront.SchedTaskDAG {
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		wtr = workers
		rings = procs * (1 + workers)
	}
	rec := wavefront.NewTraceRecorder(rings)
	var pm *wavefront.FlightRecorder
	if pmDir != "" {
		pm = wavefront.NewFlightRecorder(pmDir)
	}
	reg := wavefront.NewMetrics(procs)
	stats, err := wavefront.RunPipelined(t.ForwardBlock(), t.Env,
		wavefront.Pipeline{Procs: procs, Block: block, Trace: rec, LinkCapacity: linkCap,
			Kernel: engine, Scheduler: sched, Workers: workers, Postmortem: pm, Metrics: reg})
	if err != nil {
		if pm != nil {
			if _, bp := pm.Last(); bp != "" {
				fmt.Printf("post-mortem bundle: %s\n", bp)
			}
		}
		return err
	}
	fmt.Printf("tomcatv forward: n=%d procs=%d block=%d sched=%v tiles=%d msgs=%d elems=%d elapsed=%v\n",
		n, stats.Procs, stats.Block, sched, stats.Tiles, stats.Comm.Messages, stats.Comm.Elements, stats.Elapsed)
	fmt.Printf("kernel paths: %s\n", pathLine(reg))
	if linkCap > 0 {
		fmt.Printf("link capacity %d: %d blocked sends, %v total backpressure wait\n",
			linkCap, stats.Comm.BlockedSends, stats.Comm.BlockedSendTime)
	}
	fmt.Println(stats.Summary.String())
	if doCritPath {
		rep, cerr := critpath.Analyze(rec.Events(), critpath.Options{
			Procs: procs, Workers: wtr, Dropped: rec.Dropped(), Tolerant: true})
		if cerr != nil {
			return fmt.Errorf("critical-path analysis FAILED (%w): %v", errCheckFailed, cerr)
		}
		fmt.Println(rep.String())
	}
	if pm != nil {
		_, bp, cerr := pm.CaptureNow("traced-run")
		if cerr != nil {
			return cerr
		}
		fmt.Printf("post-mortem bundle: %s\n", bp)
	}
	if d := rec.Dropped(); d > 0 {
		fmt.Printf("WARNING: trace ring overflow — %d events dropped; the summary, Chrome export, and validation below describe a truncated trace (raise the recorder capacity)\n", d)
		return fmt.Errorf("%w: recorder dropped %d events; raise the capacity", errCheckFailed, d)
	}
	if err := wavefront.ValidateTrace(rec); err != nil {
		return fmt.Errorf("schedule validation FAILED (%w): %v", errCheckFailed, err)
	}
	fmt.Println("schedule validation: OK (every compute followed its upstream boundary receives)")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote Chrome trace (%d events) to %s — load it in ui.perfetto.dev or chrome://tracing\n",
		rec.Len(), path)
	return nil
}
