package main

import (
	"fmt"
	"strings"

	"wavefront"
	"wavefront/internal/field"
	"wavefront/internal/grid"
	"wavefront/internal/metrics"
	"wavefront/internal/scan"
	"wavefront/internal/workload"
)

// parseEngine maps the -kernel flag to an engine selector.
func parseEngine(s string) (wavefront.KernelEngine, error) {
	switch s {
	case "tape":
		return wavefront.KernelTape, nil
	case "closure":
		return wavefront.KernelClosure, nil
	case "scalar":
		return wavefront.KernelScalar, nil
	}
	return 0, fmt.Errorf("wavebench: unknown -kernel %q (want tape, closure, or scalar)", s)
}

// valLeg is one pipelined cell of the validation matrix: a kernel engine
// crossed with a tile scheduler (and, for the task DAG, a pool size).
type valLeg struct {
	name    string
	engine  wavefront.KernelEngine
	sched   wavefront.Scheduler
	workers int
}

// valLegs is the full scheduler×engine validation matrix: all three engines
// under the static schedule, plus the task-DAG scheduler at 1, 2, 4, and 8
// workers (1 worker pins the degenerate pool; the wider pools exercise
// stealing, with 8 oversubscribing most portions). The scalar leg pins the
// forced per-point tape — the baseline the span and skewed paths must stay
// bit-identical to.
func valLegs() []valLeg {
	return []valLeg{
		{"tape", wavefront.KernelTape, wavefront.SchedStatic, 0},
		{"closure", wavefront.KernelClosure, wavefront.SchedStatic, 0},
		{"scalar", wavefront.KernelScalar, wavefront.SchedStatic, 0},
		{"taskdag-w1", wavefront.KernelTape, wavefront.SchedTaskDAG, 1},
		{"taskdag-w2", wavefront.KernelTape, wavefront.SchedTaskDAG, 2},
		{"taskdag-w4", wavefront.KernelTape, wavefront.SchedTaskDAG, 4},
		{"taskdag-w8", wavefront.KernelTape, wavefront.SchedTaskDAG, 8},
	}
}

// runValidate pins the bit-identity contract on the paper's three
// workloads: the closure path run serially is the reference, and every
// (engine, scheduler) cell — serial tape plus the pipelined matrix at
// p = 1, 2, 4 — must reproduce every array bit for bit. Any disagreement
// is a check failure (exit 1).
func runValidate(n, block int) error {
	procs := []int{1, 2, 4}
	mismatches := 0
	var paths serialPaths
	report := func(wl, leg, name string, diff float64) {
		mismatches++
		fmt.Printf("MISMATCH %-8s %-16s %-8s max|diff|=%g\n", wl, leg, name, diff)
	}

	// Tomcatv: the full five-block step, iterated.
	{
		iters := 3
		ref, err := workload.NewTomcatv(n, field.RowMajor)
		if err != nil {
			return err
		}
		if err := tomcatvSerial(ref, iters, scan.ExecOptions{Engine: scan.EngineClosure}); err != nil {
			return err
		}
		tape, err := workload.NewTomcatv(n, field.RowMajor)
		if err != nil {
			return err
		}
		if err := tomcatvSerial(tape, iters, scan.ExecOptions{Engine: scan.EngineTape, Metrics: paths.reg("tomcatv")}); err != nil {
			return err
		}
		compareArrays("tomcatv", "serial tape", ref.All, ref.Env.Arrays, tape.Env.Arrays, report)
		for _, p := range procs {
			for _, leg := range valLegs() {
				w, _ := workload.NewTomcatv(n, field.RowMajor)
				blocks := w.Blocks()
				sess, err := wavefront.NewSession(w.Env, blocks, wavefront.SessionConfig{
					Procs: p, Domain: w.All, Block: block, Kernel: leg.engine,
					Scheduler: leg.sched, Workers: leg.workers})
				if err != nil {
					return err
				}
				err = sess.Run(func(r *wavefront.Rank) error {
					for i := 0; i < iters; i++ {
						for _, b := range blocks {
							if err := r.Exec(b); err != nil {
								return err
							}
						}
					}
					return nil
				})
				if err != nil {
					return err
				}
				compareArrays("tomcatv", fmt.Sprintf("p=%d %s", p, leg.name), ref.All, ref.Env.Arrays, w.Env.Arrays, report)
			}
		}
	}

	// SIMPLE: hydro + conduction step, iterated.
	{
		sn, steps := 32, 3
		ref, err := workload.NewSimple(sn, field.RowMajor)
		if err != nil {
			return err
		}
		if err := simpleSerial(ref, steps, scan.ExecOptions{Engine: scan.EngineClosure}); err != nil {
			return err
		}
		tape, err := workload.NewSimple(sn, field.RowMajor)
		if err != nil {
			return err
		}
		if err := simpleSerial(tape, steps, scan.ExecOptions{Engine: scan.EngineTape, Metrics: paths.reg("simple")}); err != nil {
			return err
		}
		compareArrays("simple", "serial tape", ref.All, ref.Env.Arrays, tape.Env.Arrays, report)
		for _, p := range procs {
			for _, leg := range valLegs() {
				w, _ := workload.NewSimple(sn, field.RowMajor)
				blocks := w.Blocks()
				sess, err := wavefront.NewSession(w.Env, blocks, wavefront.SessionConfig{
					Procs: p, Domain: w.All, Block: 5, Kernel: leg.engine,
					Scheduler: leg.sched, Workers: leg.workers})
				if err != nil {
					return err
				}
				err = sess.Run(func(r *wavefront.Rank) error {
					for i := 0; i < steps; i++ {
						for _, b := range blocks {
							if err := r.Exec(b); err != nil {
								return err
							}
						}
					}
					return nil
				})
				if err != nil {
					return err
				}
				compareArrays("simple", fmt.Sprintf("p=%d %s", p, leg.name), ref.All, ref.Env.Arrays, w.Env.Arrays, report)
			}
		}
	}

	// Sweep3D: all eight octants once, rank 3.
	{
		sn := 10
		ref, err := workload.NewSweep(sn, 3, field.RowMajor)
		if err != nil {
			return err
		}
		if err := sweepSerial(ref, scan.ExecOptions{Engine: scan.EngineClosure}); err != nil {
			return err
		}
		tape, err := workload.NewSweep(sn, 3, field.RowMajor)
		if err != nil {
			return err
		}
		if err := sweepSerial(tape, scan.ExecOptions{Engine: scan.EngineTape, Metrics: paths.reg("sweep3d")}); err != nil {
			return err
		}
		compareArrays("sweep3d", "serial tape", ref.Inner, ref.Env.Arrays, tape.Env.Arrays, report)
		for _, p := range procs {
			for _, leg := range valLegs() {
				w, _ := workload.NewSweep(sn, 3, field.RowMajor)
				var blocks []*wavefront.Block
				for _, dirs := range w.Octants() {
					blocks = append(blocks, w.OctantBlock(dirs))
				}
				sess, err := wavefront.NewSession(w.Env, blocks, wavefront.SessionConfig{
					Procs: p, Domain: w.Inner, Block: 3, Kernel: leg.engine,
					Scheduler: leg.sched, Workers: leg.workers})
				if err != nil {
					return err
				}
				err = sess.Run(func(r *wavefront.Rank) error {
					for _, b := range blocks {
						if err := r.Exec(b); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return err
				}
				compareArrays("sweep3d", fmt.Sprintf("p=%d %s", p, leg.name), ref.Inner, ref.Env.Arrays, w.Env.Arrays, report)
			}
		}
	}

	// Smith-Waterman: the affine-gap DP fill against its straight-Go oracle,
	// plus the data-dependent traceback — the walk must reproduce the
	// oracle's alignment exactly over every engine/scheduler cell.
	{
		sn := 24
		ref, err := workload.NewSW(sn, 7, field.RowMajor)
		if err != nil {
			return err
		}
		oracle := ref.Reference()
		refEnd, refOps := ref.TracebackOf(oracle)
		checkTraceback := func(leg string, w *workload.SW) {
			end, ops := w.Traceback()
			if end[0] != refEnd[0] || end[1] != refEnd[1] || string(ops) != string(refOps) {
				report("sw", leg, "traceback", -1)
			}
		}
		for _, eng := range []struct {
			name string
			e    scan.Engine
		}{{"serial closure", scan.EngineClosure}, {"serial scalar", scan.EngineScalar}, {"serial tape", scan.EngineTape}} {
			w, err := workload.NewSW(sn, 7, field.RowMajor)
			if err != nil {
				return err
			}
			opt := scan.ExecOptions{Engine: eng.e}
			if eng.e == scan.EngineTape {
				opt.Metrics = paths.reg("sw")
			}
			if err := scan.Exec(w.Block(), w.Env, opt); err != nil {
				return err
			}
			compareArrays("sw", eng.name, w.All, oracle, w.Env.Arrays, report)
			checkTraceback(eng.name, w)
		}
		for _, p := range procs {
			for _, leg := range valLegs() {
				w, _ := workload.NewSW(sn, 7, field.RowMajor)
				blk := w.Block()
				sess, err := wavefront.NewSession(w.Env, []*wavefront.Block{blk}, wavefront.SessionConfig{
					Procs: p, Domain: w.All, Block: 6, Kernel: leg.engine,
					Scheduler: leg.sched, Workers: leg.workers})
				if err != nil {
					return err
				}
				if err := sess.Run(func(r *wavefront.Rank) error { return r.Exec(blk) }); err != nil {
					return err
				}
				legName := fmt.Sprintf("p=%d %s", p, leg.name)
				compareArrays("sw", legName, w.All, oracle, w.Env.Arrays, report)
				checkTraceback(legName, w)
			}
		}
	}

	// Blocked factorization: LU and Cholesky, whose per-step regions shrink
	// (the empty-portion path idles low ranks mid-program) and whose tile
	// cost varies by position.
	for _, chol := range []bool{false, true} {
		name, mk := "lu", workload.NewLU
		if chol {
			name, mk = "cholesky", workload.NewCholesky
		}
		fn := 16
		ref, err := mk(fn, 3, field.RowMajor)
		if err != nil {
			return err
		}
		oracle := map[string]*field.Field{"a": ref.Reference()}
		for _, eng := range []struct {
			name string
			e    scan.Engine
		}{{"serial closure", scan.EngineClosure}, {"serial scalar", scan.EngineScalar}, {"serial tape", scan.EngineTape}} {
			w, err := mk(fn, 3, field.RowMajor)
			if err != nil {
				return err
			}
			opt := scan.ExecOptions{Engine: eng.e}
			if eng.e == scan.EngineTape {
				opt.Metrics = paths.reg(name)
			}
			if err := w.Run(opt); err != nil {
				return err
			}
			compareFactor(name, eng.name, w, oracle, report)
		}
		for _, p := range procs {
			for _, leg := range valLegs() {
				w, _ := mk(fn, 3, field.RowMajor)
				blocks := w.Blocks()
				sess, err := wavefront.NewSession(w.Env, blocks, wavefront.SessionConfig{
					Procs: p, Domain: w.All, Block: 4, Kernel: leg.engine,
					Scheduler: leg.sched, Workers: leg.workers})
				if err != nil {
					return err
				}
				err = sess.Run(func(r *wavefront.Rank) error {
					for _, b := range blocks {
						if err := r.Exec(b); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return err
				}
				compareFactor(name, fmt.Sprintf("p=%d %s", p, leg.name), w, oracle, report)
			}
		}
	}

	// Multi-octant transport: two counter-propagating octants executed as
	// one scheduling group (merged task DAG at p=1, overlapping sequential
	// waves otherwise), then the combine pass.
	{
		mn, k := 20, 2
		ref, err := workload.NewMultiOctant(mn, k, field.RowMajor)
		if err != nil {
			return err
		}
		oracle := ref.Reference()
		for _, eng := range []struct {
			name string
			e    scan.Engine
		}{{"serial closure", scan.EngineClosure}, {"serial scalar", scan.EngineScalar}, {"serial tape", scan.EngineTape}} {
			w, err := workload.NewMultiOctant(mn, k, field.RowMajor)
			if err != nil {
				return err
			}
			opt := scan.ExecOptions{Engine: eng.e}
			if eng.e == scan.EngineTape {
				opt.Metrics = paths.reg("multioct")
			}
			if err := w.RunSequential(opt); err != nil {
				return err
			}
			compareArrays("multioct", eng.name, w.Inner, oracle, w.Env.Arrays, report)
		}
		for _, p := range procs {
			for _, leg := range valLegs() {
				w, _ := workload.NewMultiOctant(mn, k, field.RowMajor)
				sess, err := wavefront.NewSession(w.Env, w.Blocks(), wavefront.SessionConfig{
					Procs: p, Domain: w.All, Block: 6, Kernel: leg.engine,
					Scheduler: leg.sched, Workers: leg.workers})
				if err != nil {
					return err
				}
				err = sess.Run(func(r *wavefront.Rank) error {
					if err := r.ExecGroup(w.OctantBlocks()); err != nil {
						return err
					}
					return r.Exec(w.CombineBlock())
				})
				if err != nil {
					return err
				}
				compareArrays("multioct", fmt.Sprintf("p=%d %s", p, leg.name), w.Inner, oracle, w.Env.Arrays, report)
			}
		}
	}

	fmt.Println(paths.String())
	if mismatches > 0 {
		return fmt.Errorf("%w: %d disagreement(s) across the engine/scheduler matrix", errCheckFailed, mismatches)
	}
	fmt.Println("validate: every engine/scheduler cell bit-identical on tomcatv, simple, sweep3d, sw, lu, cholesky, multioct (serial and p=1/2/4; static and taskdag w=1/2/4/8)")
	return nil
}

// compareFactor checks the factored matrix against the oracle and its
// reconstruction residual against the numerical floor — the bit-identity
// differential plus an independent accuracy check.
func compareFactor(wl, leg string, w *workload.Factor, oracle map[string]*field.Field, report func(wl, leg, name string, diff float64)) {
	compareArrays(wl, leg, w.All, oracle, w.Env.Arrays, report)
	if r := w.ResidualMax(); r > 1e-9 {
		report(wl, leg, "residual", r)
	}
}

func tomcatvSerial(t *workload.Tomcatv, iters int, opt scan.ExecOptions) error {
	for i := 0; i < iters; i++ {
		for _, b := range t.Blocks() {
			if err := scan.Exec(b, t.Env, opt); err != nil {
				return err
			}
		}
	}
	return nil
}

func simpleSerial(s *workload.Simple, steps int, opt scan.ExecOptions) error {
	for i := 0; i < steps; i++ {
		for _, b := range s.Blocks() {
			if err := scan.Exec(b, s.Env, opt); err != nil {
				return err
			}
		}
	}
	return nil
}

func sweepSerial(s *workload.Sweep, opt scan.ExecOptions) error {
	for _, dirs := range s.Octants() {
		if err := scan.Exec(s.OctantBlock(dirs), s.Env, opt); err != nil {
			return err
		}
	}
	return nil
}

func compareArrays(wl, leg string, region grid.Region, ref, got map[string]*field.Field, report func(wl, leg, name string, diff float64)) {
	for name, rf := range ref {
		gf, ok := got[name]
		if !ok {
			report(wl, leg, name, -1)
			continue
		}
		if d := gf.MaxAbsDiff(region, rf); d != 0 {
			report(wl, leg, name, d)
		}
	}
}

// serialPaths collects one single-rank metrics registry per workload for the
// serial tape legs, so the validate output can say which executor path —
// span, skewed, scalar, closure — each workload's tape actually took. A
// workload silently falling back to the scalar engine shows up here instead
// of hiding as an unexplained slowdown.
type serialPaths struct {
	names []string
	regs  []*metrics.Registry
}

// reg returns a fresh registry attributed to workload wl.
func (sp *serialPaths) reg(wl string) *metrics.Registry {
	r := metrics.New(1)
	sp.names = append(sp.names, wl)
	sp.regs = append(sp.regs, r)
	return r
}

// String renders the one-line summary printed at the end of -validate.
func (sp *serialPaths) String() string {
	var b strings.Builder
	b.WriteString("kernel paths (serial tape):")
	for i, name := range sp.names {
		fmt.Fprintf(&b, " %s[%s]", name, pathLine(sp.regs[i]))
	}
	return b.String()
}

// pathLine formats the kernel-path counters of one registry.
func pathLine(r *metrics.Registry) string {
	s := r.Snapshot()
	get := func(name string) int64 { return s.Counters[name].Total }
	return fmt.Sprintf("span=%d skewed=%d scalar=%d closure=%d",
		get(metrics.KernelPathSpan), get(metrics.KernelPathSkewed),
		get(metrics.KernelPathScalar), get(metrics.KernelPathClosure))
}
