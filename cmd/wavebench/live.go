package main

import (
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"wavefront"
	"wavefront/internal/critpath"
	"wavefront/internal/metrics"
)

// runLive loops the Tomcatv forward wavefront with metrics on, optionally
// serving the registry over HTTP (-serve) and/or printing a periodic
// one-line summary (-watch). The loop stops after -duration, or on
// SIGINT/SIGTERM when the duration is 0.
func runLive(addr string, watch bool, procs, block, n int, dur time.Duration, pooled, autotune bool, engine wavefront.KernelEngine, sched wavefront.Scheduler, workers int, pmDir string) error {
	t, err := prepTomcatv(n)
	if err != nil {
		return err
	}
	reg := wavefront.NewMetrics(procs)
	// One pool shared across every run keeps the free lists warm, so after
	// the first run the steady-state waves stop allocating. AutoTune reads
	// the same registry the loop publishes into, so each run consumes the
	// drift fitted over all prior runs.
	var pool *wavefront.BufferPool
	if pooled {
		pool = wavefront.NewBufferPool(procs)
	}

	// When serving or flight-recording, each iteration runs traced on a
	// flight ring (reset per run) so /debug/critpath always shows the last
	// completed run's critical path and failure bundles carry a trace tail.
	var rec *wavefront.TraceRecorder
	wtr := 0
	if addr != "" || pmDir != "" {
		rings := procs
		if sched == wavefront.SchedTaskDAG {
			wtr = workers
			if wtr <= 0 {
				wtr = runtime.GOMAXPROCS(0)
			}
			rings = procs * (1 + wtr)
		}
		rec = wavefront.NewTraceRecorder(rings)
	}
	var pm *wavefront.FlightRecorder
	if pmDir != "" {
		pm = wavefront.NewFlightRecorder(pmDir)
	}
	holder := &wavefront.CritPathHolder{}
	if addr != "" {
		srv, err := wavefront.ServeMetrics(addr, reg,
			wavefront.MetricsEndpoint{Path: "/debug/critpath", Handler: holder},
			wavefront.MetricsEndpoint{Path: "/debug/bundle", Handler: pm})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("serving metrics on http://%s  (/metrics, /debug/vars, /debug/pprof/, /debug/critpath, /debug/bundle)\n", srv.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(stop)
	var deadline <-chan time.Time
	if dur > 0 {
		deadline = time.After(dur)
	}

	var ticker *time.Ticker
	var tick <-chan time.Time
	if watch {
		ticker = time.NewTicker(time.Second)
		defer ticker.Stop()
		tick = ticker.C
	}

	fmt.Printf("looping tomcatv forward: n=%d procs=%d block=%d\n", n, procs, block)
	var lastTiles, lastBusy int64
	lastAt := time.Now()
	runs := 0
	for {
		select {
		case <-stop:
			fmt.Printf("\nstopped after %d runs\n", runs)
			return nil
		case <-deadline:
			fmt.Printf("done: %d runs in %v\n", runs, dur)
			return nil
		case <-tick:
			snap := reg.Snapshot()
			now := time.Now()
			wall := now.Sub(lastAt)
			tiles := snap.Counters[metrics.PipeTiles].Total
			busy := snap.Counters[metrics.PipeBusyNs].Total
			rate := float64(tiles-lastTiles) / wall.Seconds()
			util := float64(busy-lastBusy) / (wall.Seconds() * 1e9 * float64(procs))
			fmt.Printf("tiles/s=%-9.0f utilization=%-5.2f drift=%-5.2f opt_b=%-4.0f runs=%d\n",
				rate, util, snap.Gauges[metrics.ModelDrift], snap.Gauges[metrics.ModelOptBlock], runs)
			lastTiles, lastBusy, lastAt = tiles, busy, now
		default:
			if rec != nil {
				rec.Reset()
			}
			if _, err := wavefront.RunPipelined(t.ForwardBlock(), t.Env,
				wavefront.Pipeline{Procs: procs, Block: block, Metrics: reg,
					Pool: pool, AutoTune: autotune, Kernel: engine,
					Scheduler: sched, Workers: workers, Trace: rec,
					Postmortem: pm}); err != nil {
				if pm != nil {
					if _, bp := pm.Last(); bp != "" {
						fmt.Printf("post-mortem bundle: %s\n", bp)
					}
				}
				return err
			}
			if rec != nil {
				if rep, err := critpath.Analyze(rec.Events(), critpath.Options{
					Procs: procs, Workers: wtr, Dropped: rec.Dropped(),
					Tolerant: true, Metrics: reg}); err == nil {
					holder.Set(rep)
				}
			}
			runs++
		}
	}
}
