package main

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"

	"wavefront"
	"wavefront/internal/chaosspec"
	"wavefront/internal/field"
	"wavefront/internal/metrics"
	"wavefront/internal/workload"
)

// chaosModes are the -chaos scenarios, in run order for "all".
var chaosModes = chaosspec.Modes

// runChaos demonstrates the fault-tolerant runtime on the Tomcatv forward
// wavefront: it injects one seeded fault scenario (or all of them),
// verifies the run ends the way the scenario predicts — a structured
// deadlock diagnosis for starvation, an oracle-visible perturbation for
// corruption, a clean bit-identical run for delay and backpressure, a
// checkpoint-restart recovery to a bit-identical result for the recover
// scenarios — and prints the injector accounting and diagnostics.
func runChaos(mode string, procs, block, n, linkCap int, seed int64, sched wavefront.Scheduler, workers int, tcfg wavefront.TransportConfig, ckptEvery int, pmDir string) error {
	modes := []string{mode}
	if mode == "all" {
		modes = chaosModes
	}

	// Serial oracle: the fault-free reference result.
	oracle, err := prepTomcatv(n)
	if err != nil {
		return err
	}
	if err := wavefront.Exec(oracle.ForwardBlock(), oracle.Env); err != nil {
		return err
	}

	failed := false
	for _, m := range modes {
		if m == "backpressure" && tcfg.Kind != wavefront.TransportChan {
			// Bounded links live in the channel transport's queues; socket
			// transports get their backpressure from the kernel and reject
			// LinkCapacity outright.
			fmt.Printf("chaos %s: skipped under the %v transport (no bounded links)\n\n", m, tcfg.Kind)
			continue
		}
		if err := runChaosMode(m, procs, block, n, linkCap, seed, sched, workers, tcfg, ckptEvery, oracle, pmDir); err != nil {
			fmt.Printf("chaos %s: FAILED: %v\n\n", m, err)
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("chaos: one or more scenarios did not behave as predicted: %w", errCheckFailed)
	}
	return nil
}

func runChaosMode(mode string, procs, block, n, linkCap int, seed int64, sched wavefront.Scheduler, workers int, tcfg wavefront.TransportConfig, ckptEvery int, oracle *workload.Tomcatv, pmDir string) error {
	// The rule tables live in internal/chaosspec so this demonstration and
	// the repo's failure-drill tests inject identical schedules.
	rules, err := chaosspec.Rules(mode, sched)
	if err != nil {
		return err
	}
	if mode == "backpressure" && linkCap == 0 {
		// No faults: a bounded link must stay bit-identical to the oracle.
		linkCap = 1
	}
	recovery := chaosspec.Recovery(mode)

	var inj *wavefront.FaultInjector
	if len(rules) > 0 {
		var err error
		inj, err = wavefront.NewFaultInjector(wavefront.FaultPlan{Seed: seed, Rules: rules})
		if err != nil {
			return err
		}
	}
	t, err := prepTomcatv(n)
	if err != nil {
		return err
	}
	cfg := wavefront.Pipeline{Procs: procs, Block: block, Faults: inj, LinkCapacity: linkCap,
		Scheduler: sched, Workers: workers, Transport: tcfg}
	var pm *wavefront.FlightRecorder
	if pmDir != "" {
		// One subdirectory per scenario so a -chaos all sweep keeps its
		// bundles apart.
		pm = wavefront.NewFlightRecorder(filepath.Join(pmDir, mode))
		cfg.Postmortem = pm
	}
	var reg *wavefront.Metrics
	if recovery {
		reg = wavefront.NewMetrics(procs)
		cfg.Metrics = reg
		cfg.Checkpoint = &wavefront.Checkpoint{Every: ckptEvery}
	}
	_, err = wavefront.RunPipelined(t.ForwardBlock(), t.Env, cfg)

	diff := maxDiff(t, oracle)
	switch mode {
	case "drop", "stall":
		var dl *wavefront.DeadlockError
		if !errors.As(err, &dl) {
			return fmt.Errorf("expected a deadlock diagnosis, got: %v", err)
		}
		fmt.Printf("chaos %s: diagnosed, not hung:\n  %v\n", mode, dl)
	case "crash":
		if !errors.Is(err, wavefront.ErrFaultInjected) {
			return fmt.Errorf("expected the injected crash to propagate, got: %v", err)
		}
		fmt.Printf("chaos %s: crash propagated with peers canceled:\n  %v\n", mode, err)
	case "corrupt":
		if err != nil {
			return fmt.Errorf("corrupted run must still complete, got: %v", err)
		}
		if diff == 0 {
			return errors.New("corruption was not visible to the serial-vs-pipelined oracle")
		}
		fmt.Printf("chaos %s: oracle caught it — max |pipelined - serial| = %g\n", mode, diff)
	case "delay", "backpressure":
		if err != nil {
			return fmt.Errorf("run must complete cleanly, got: %v", err)
		}
		if diff != 0 {
			return fmt.Errorf("result diverged from the serial oracle by %g", diff)
		}
		fmt.Printf("chaos %s: bit-identical to the serial oracle\n", mode)
	case "recover", "recover-multi":
		if err != nil {
			return fmt.Errorf("crashed rank(s) must recover from snapshots, got: %v", err)
		}
		if inj.Fired() == 0 {
			return errors.New("the crash rule never fired; the run proves nothing")
		}
		if diff != 0 {
			return fmt.Errorf("recovered run diverged from the serial oracle by %g", diff)
		}
		snaps := reg.Counter(metrics.CkptSnapshots).Value()
		restores := reg.Counter(metrics.CkptRestores).Value()
		replayed := reg.Counter(metrics.CkptReplayed).Value()
		if restores == 0 {
			return errors.New("the run completed without a restart; the crash was not exercised")
		}
		fmt.Printf("chaos %s: recovered bit-identical to the serial oracle (%d snapshots, %d restores, %d msgs replayed)\n",
			mode, snaps, restores, replayed)
	}
	if pm != nil {
		if err := verifyBundle(pm, mode, recovery); err != nil {
			return err
		}
	}
	if inj != nil {
		fmt.Printf("  %s\n", inj)
	}
	fmt.Println()
	return nil
}

// verifyBundle closes the post-mortem loop on a chaos scenario: every
// scenario must leave a bundle (the clean backpressure run captures on
// demand from the stashed run state), the artifact must round-trip through
// the decoder with its checksum verified, and recovery scenarios must carry
// the checkpoint metadata a post-mortem of a restarted run needs.
func verifyBundle(pm *wavefront.FlightRecorder, mode string, recovery bool) error {
	_, path := pm.Last()
	if path == "" {
		// The scenario ended cleanly with nothing fired (backpressure): the
		// run state is stashed, capture it explicitly.
		var err error
		if _, path, err = pm.CaptureNow("chaos-" + mode); err != nil {
			return fmt.Errorf("post-mortem capture failed: %w", err)
		}
	}
	b, err := wavefront.ReadPostmortemBundle(path)
	if err != nil {
		return fmt.Errorf("post-mortem bundle %s did not round-trip: %w", path, err)
	}
	if recovery && len(b.Ckpt) == 0 {
		return fmt.Errorf("post-mortem bundle %s lacks checkpoint metadata for a recovery scenario", path)
	}
	fmt.Printf("  post-mortem bundle: %s (class=%s, %d trace rings, checksum ok)\n",
		path, b.Class, len(b.TraceTail))
	return nil
}

// prepTomcatv builds a Tomcatv instance and runs the residual and
// coefficient sweeps serially so the arrays the forward elimination reads
// (aa, dd, r, rx, ry) hold real values. On a freshly Reset instance those
// coefficients are all zero and the recurrence r = aa·d'@north multiplies
// any injected corruption by zero — the oracle could never see it.
func prepTomcatv(n int) (*workload.Tomcatv, error) {
	t, err := workload.NewTomcatv(n, field.RowMajor)
	if err != nil {
		return nil, err
	}
	if err := wavefront.Exec(t.ResidualBlock(), t.Env); err != nil {
		return nil, err
	}
	if err := wavefront.Exec(t.CoefficientBlock(), t.Env); err != nil {
		return nil, err
	}
	return t, nil
}

// maxDiff is the serial-vs-pipelined oracle: the largest absolute
// difference over every program array.
func maxDiff(a, b *workload.Tomcatv) float64 {
	worst := 0.0
	for _, name := range workload.TomcatvArrays {
		da, db := a.Env.Arrays[name].Data(), b.Env.Arrays[name].Data()
		for i := range da {
			if d := math.Abs(da[i] - db[i]); d > worst {
				worst = d
			}
		}
	}
	return worst
}
