package main

import (
	"fmt"
	"runtime"
	"time"

	"wavefront"
	"wavefront/internal/field"
	"wavefront/internal/workload"
)

// runSpeedup demonstrates the task-DAG scheduler's in-rank parallelism:
// the Tomcatv forward elimination on a single rank, timed under the DAG at
// 1 worker and again at `workers` workers. With one rank there is no
// pipeline overlap to confound the measurement — any speedup comes from
// tiles of the same portion executing concurrently on the pool. Each leg
// takes the best of several repetitions after a warm-up run (the first run
// compiles the kernel and builds the portion graph).
func runSpeedup(n, block, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reps := 5
	timeLeg := func(w int) (time.Duration, error) {
		t, err := workload.NewTomcatv(n, field.RowMajor)
		if err != nil {
			return 0, err
		}
		cfg := wavefront.Pipeline{Procs: 1, Block: block,
			Scheduler: wavefront.SchedTaskDAG, Workers: w}
		best := time.Duration(0)
		for i := 0; i <= reps; i++ {
			t0 := time.Now()
			if _, err := wavefront.RunPipelined(t.ForwardBlock(), t.Env, cfg); err != nil {
				return 0, err
			}
			el := time.Since(t0)
			if i == 0 {
				continue // warm-up: kernel compile and graph build
			}
			if best == 0 || el < best {
				best = el
			}
		}
		return best, nil
	}
	base, err := timeLeg(1)
	if err != nil {
		return err
	}
	par, err := timeLeg(workers)
	if err != nil {
		return err
	}
	ratio := float64(base) / float64(par)
	fmt.Printf("taskdag speedup: tomcatv forward n=%d procs=1 (best of %d)\n", n, reps)
	fmt.Printf("  workers=1:  %v\n", base)
	fmt.Printf("  workers=%d: %v\n", workers, par)
	fmt.Printf("  speedup: %.2fx on %d CPUs\n", ratio, runtime.NumCPU())
	return nil
}
