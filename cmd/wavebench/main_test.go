package main

// In-package drills for the wavebench entry points. Each mode function is
// exercised the way CI invokes the binary (validate matrix, chaos sweep,
// traced run with critical path, speedup table, live loop), so the command
// paths stay under the coverage floor instead of counting as dead weight.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wavefront"
)

func TestParseEngine(t *testing.T) {
	if eng, err := parseEngine("tape"); err != nil || eng != wavefront.KernelTape {
		t.Fatalf("tape: got (%v, %v)", eng, err)
	}
	if eng, err := parseEngine("closure"); err != nil || eng != wavefront.KernelClosure {
		t.Fatalf("closure: got (%v, %v)", eng, err)
	}
	if _, err := parseEngine("jit"); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestRunValidateQuick runs the full differential matrix (all workload
// families, serial tape+closure, p=1/2/4 across every scheduler leg) at a
// small size. Any oracle mismatch makes runValidate return errCheckFailed.
func TestRunValidateQuick(t *testing.T) {
	if err := runValidate(16, 4); err != nil {
		t.Fatalf("validate matrix failed: %v", err)
	}
}

// TestRunChaosAll sweeps every chaos scenario with post-mortem bundles on,
// mirroring the CI soak invocation, under both schedulers.
func TestRunChaosAll(t *testing.T) {
	for _, sched := range []struct {
		name    string
		sched   wavefront.Scheduler
		workers int
	}{
		{"static", wavefront.SchedStatic, 0},
		{"taskdag", wavefront.SchedTaskDAG, 2},
	} {
		t.Run(sched.name, func(t *testing.T) {
			err := runChaos("all", 4, 8, 64, 0, 1, sched.sched, sched.workers,
				wavefront.TransportConfig{}, 2, t.TempDir())
			if err != nil {
				t.Fatalf("chaos sweep failed: %v", err)
			}
		})
	}
}

func TestRunChaosUnknownMode(t *testing.T) {
	err := runChaos("meteor", 4, 8, 32, 0, 1, wavefront.SchedStatic, 0,
		wavefront.TransportConfig{}, 2, "")
	if !errors.Is(err, errCheckFailed) {
		t.Fatalf("want errCheckFailed for an unknown mode, got: %v", err)
	}
}

// TestRunTraced records a pipelined run, validates the schedule, writes the
// Chrome trace JSON, runs the critical-path decomposition, and arms the
// flight recorder — the full -trace -critpath -postmortem path.
func TestRunTraced(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.json")
	if err := runTraced(out, 4, 8, 32, 2, wavefront.KernelTape, wavefront.SchedStatic, 0, true, dir); err != nil {
		t.Fatalf("traced run failed: %v", err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file not written: %v", err)
	}
}

func TestRunSpeedup(t *testing.T) {
	if err := runSpeedup(32, 8, 2); err != nil {
		t.Fatalf("speedup table failed: %v", err)
	}
}

// TestRunLive loops the workload for a short bounded duration with the
// metrics server, watch ticker, pool, autotune, and flight recorder all on.
func TestRunLive(t *testing.T) {
	err := runLive("127.0.0.1:0", true, 2, 8, 24, 300*time.Millisecond,
		true, true, wavefront.KernelTape, wavefront.SchedStatic, 0, t.TempDir())
	if err != nil {
		t.Fatalf("live loop failed: %v", err)
	}
}
