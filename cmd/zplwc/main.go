// Zplwc is the ZPL wavefront checker and runner: it parses a mini-ZPL
// source file, reports the static analysis of every scan block and array
// statement (wavefront summary vector, legality, per-dimension roles,
// derived loop structure), and optionally executes the program.
//
// Usage:
//
//	zplwc program.zpl             # analyze
//	zplwc -run program.zpl        # analyze, then execute (writeln to stdout)
//	zplwc -run -p 4 -b 8 pgm.zpl  # execute across 4 ranks, tile width 8
//	zplwc -colmajor program.zpl   # Fortran storage order
package main

import (
	"flag"
	"fmt"
	"os"

	"wavefront/internal/field"
	"wavefront/internal/scan"
	"wavefront/internal/zpl"
)

func main() {
	var (
		run      = flag.Bool("run", false, "execute the program after analysis")
		colmajor = flag.Bool("colmajor", false, "column-major array storage")
		procs    = flag.Int("p", 1, "ranks for parallel execution (with -run)")
		block    = flag.Int("b", 0, "pipeline tile width (0 = naive; with -p)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: zplwc [-run] [-p N] [-b W] [-colmajor] program.zpl")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	layout := field.RowMajor
	if *colmajor {
		layout = field.ColMajor
	}
	prog, err := zpl.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	it := zpl.New(zpl.Options{Layout: layout})
	reports, err := it.Analyze(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bad := false
	for _, rep := range reports {
		fmt.Printf("%s %s block over %v\n", rep.Pos, rep.Kind, rep.Region)
		if rep.Block != nil {
			for _, s := range rep.Block.Stmts {
				fmt.Printf("    %s\n", s)
			}
		}
		if rep.Err != nil {
			fmt.Printf("  ILLEGAL: %v\n", rep.Err)
			bad = true
			continue
		}
		fmt.Printf("  %s\n", indent(rep.Analysis.String()))
	}
	if bad {
		os.Exit(1)
	}
	if !*run {
		return
	}
	fmt.Println("--- run ---")
	fresh := zpl.New(zpl.Options{Out: os.Stdout, Layout: layout, Exec: scan.ExecOptions{}})
	if *procs > 1 {
		err = fresh.RunParallel(prog, *procs, *block)
	} else {
		err = fresh.Run(prog)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func indent(s string) string {
	out := ""
	for i, line := range splitLines(s) {
		if i > 0 {
			out += "\n  "
		}
		out += line
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(out, cur)
}
