package main

import (
	"flag"
	"os"
	"testing"
)

// TestMainAnalyzeAndRun drives the checker end to end on a repo testdata
// program: analysis report, then serial and pipelined execution (the same
// program the golden tests diff, so output correctness is covered there —
// this drill covers the CLI plumbing).
func TestMainAnalyzeAndRun(t *testing.T) {
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	for _, args := range [][]string{
		{"zplwc", "../../testdata/sw.zpl"},
		{"zplwc", "-run", "../../testdata/sw.zpl"},
		{"zplwc", "-run", "-p", "2", "-b", "4", "-colmajor", "../../testdata/sw.zpl"},
	} {
		flag.CommandLine = flag.NewFlagSet("zplwc", flag.ExitOnError)
		os.Args = args
		main()
	}
}

func TestIndent(t *testing.T) {
	if got := indent("a\nb\nc"); got != "a\n  b\n  c" {
		t.Errorf("indent: %q", got)
	}
	if got := indent("single"); got != "single" {
		t.Errorf("indent single line: %q", got)
	}
	lines := splitLines("x\n\ny")
	if len(lines) != 3 || lines[0] != "x" || lines[1] != "" || lines[2] != "y" {
		t.Errorf("splitLines: %q", lines)
	}
}
