package wavefront_test

// Flight-recorder failure drills: every chaos scenario the wavebench CLI
// demonstrates (the rule tables live in internal/chaosspec so the CLI and
// this battery inject identical schedules) must leave a post-mortem bundle
// that round-trips through the decoder with its checksum verified, carries
// the trace tail, and — for the recovery scenarios — the checkpoint
// metadata a post-mortem of a restarted run needs. A tampered artifact
// must be rejected with ErrBundleChecksum.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wavefront"
	"wavefront/internal/chaosspec"
)

func TestPostmortemBundleAcrossChaosScenarios(t *testing.T) {
	const n, procs, block, ckptEvery = 64, 4, 8, 2
	wantClass := map[string]string{
		"drop":          "deadlock",
		"corrupt":       "fault",
		"stall":         "deadlock",
		"crash":         "fault",
		"delay":         "fault",
		"backpressure":  "manual",
		"recover":       "recovery-restart",
		"recover-multi": "recovery-restart",
	}
	for _, mode := range chaosspec.Modes {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			rules, err := chaosspec.Rules(mode, wavefront.SchedStatic)
			if err != nil {
				t.Fatal(err)
			}
			var inj *wavefront.FaultInjector
			if len(rules) > 0 {
				if inj, err = wavefront.NewFaultInjector(wavefront.FaultPlan{Seed: 7, Rules: rules}); err != nil {
					t.Fatal(err)
				}
			}
			dir := t.TempDir()
			pm := wavefront.NewFlightRecorder(dir)
			tc, _ := tomcatvOracle(t, n)
			cfg := wavefront.Pipeline{Procs: procs, Block: block, Faults: inj, Postmortem: pm}
			if mode == "backpressure" {
				cfg.LinkCapacity = 1
			}
			if chaosspec.Recovery(mode) {
				cfg.Metrics = wavefront.NewMetrics(procs)
				cfg.Checkpoint = &wavefront.Checkpoint{Every: ckptEvery}
			}
			_, runErr := wavefront.RunPipelined(tc.ForwardBlock(), tc.Env, cfg)
			if chaosspec.Clean(mode) {
				if runErr != nil {
					t.Fatalf("%s run must complete, got: %v", mode, runErr)
				}
			} else if runErr == nil {
				t.Fatalf("%s run completed without the predicted failure", mode)
			}

			_, path := pm.Last()
			if path == "" {
				// Nothing fired (backpressure is faultless): the run state is
				// stashed, capture it on demand.
				if _, path, err = pm.CaptureNow("manual"); err != nil {
					t.Fatalf("CaptureNow: %v", err)
				}
			}
			b, err := wavefront.ReadPostmortemBundle(path)
			if err != nil {
				t.Fatalf("bundle %s did not round-trip: %v", path, err)
			}
			if b.Class != wantClass[mode] {
				t.Errorf("bundle class = %q, want %q", b.Class, wantClass[mode])
			}
			if len(b.TraceTail) == 0 {
				t.Error("bundle has no trace tail: the flight ring never armed")
			}
			if b.Config.Procs != procs || b.Config.Block != block {
				t.Errorf("bundle config %+v does not record the run", b.Config)
			}
			if chaosspec.Recovery(mode) {
				if len(b.Ckpt) == 0 {
					t.Error("recovery bundle lacks checkpoint metadata")
				}
				if b.Restarts == 0 {
					t.Error("recovery bundle records no restarts")
				}
			}
			if !strings.HasPrefix(filepath.Base(path), "postmortem-") {
				t.Errorf("unexpected bundle name %q", filepath.Base(path))
			}
		})
	}
}

func TestPostmortemTamperedFileRejected(t *testing.T) {
	const n, procs, block = 64, 4, 8
	rules, err := chaosspec.Rules("crash", wavefront.SchedStatic)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := wavefront.NewFaultInjector(wavefront.FaultPlan{Seed: 7, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	pm := wavefront.NewFlightRecorder(t.TempDir())
	tc, _ := tomcatvOracle(t, n)
	if _, err := wavefront.RunPipelined(tc.ForwardBlock(), tc.Env,
		wavefront.Pipeline{Procs: procs, Block: block, Faults: inj, Postmortem: pm}); err == nil {
		t.Fatal("injected crash did not propagate")
	}
	_, path := pm.Last()
	if path == "" {
		t.Fatal("crash left no bundle")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"class":"fault"`, `"class":"clean"`, 1)
	if tampered == string(data) {
		t.Fatal("tamper replacement did not apply")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := wavefront.ReadPostmortemBundle(path)
	if !errors.Is(err, wavefront.ErrBundleChecksum) {
		t.Fatalf("tampered bundle read without ErrBundleChecksum: %v", err)
	}
	if b == nil {
		t.Fatal("tampered read should still return the decoded bundle for inspection")
	}
}
